// Memento (Algorithm 1): sliding-window heavy hitters with sampled Full
// updates and O(1) worst-case processing.
//
// The key idea (Section 4.1): decouple the expensive *Full update* (count the
// packet in the Space-Saving instance, record overflows) from the cheap
// *Window update* (advance the window clock and forget outdated data). Each
// packet triggers a Full update with probability tau and only a Window update
// otherwise, so Memento maintains a genuine W-packet window - avoiding the
// +-Theta(sqrt(W(1-tau)/tau)) reference-window error of naive uniform
// sampling - while paying the full data-structure cost on a tau fraction of
// packets. With tau = 1 Memento *is* WCSS [10].
//
// Structure (frames and blocks):
//   * the stream is cut into frames of W packets; each frame into k blocks;
//   * a Space-Saving instance `y` (k counters) approximately counts, within
//     the current frame, how often each item was *sampled*; it is flushed at
//     every frame boundary;
//   * every time an item's in-frame sampled count crosses a multiple of the
//     overflow threshold, the item is appended to the current block's queue
//     and its entry in the overflow table B is incremented;
//   * a ring of k+1 block queues covers the window; one queued item is
//     retired per packet (de-amortized, Algorithm 1 lines 8-11), so the
//     oldest queue is provably empty when its block expires.
//
// Overflow-threshold scaling: Algorithm 1 prints the threshold as W/k, which
// is exact for tau = 1. Under sampling, `y` counts *sampled* packets - about
// tau*W per frame - so the threshold must live in sampled units:
// T = max(1, round(W*tau/k)). Each overflow then still represents W/k
// *original* packets (T * tau^-1), which is what keeps the algorithm-side
// error epsilon_a = 4/k independent of tau, as required by Theorem 5.2 and
// matched by the flat error curves of Fig. 5. See DESIGN.md ("Design
// decisions"), item 3/4.
//
// Query (Algorithm 1 lines 22-25) returns a ONE-SIDED (over-)estimate:
// tau^-1 * (T*(B[x]+2) + (y.query(x) mod T)); the +2 blocks of slack absorb
// both the de-amortized retirement fuzz and the in-frame residue, mirroring
// MST's one-sided error. `query_lower` exposes the matching lower bound
// (upper minus the 4*T*tau^-1 worst-case width).
//
// Batched updates: `update_batch(xs, n)` (and the std::span overload)
// processes n packets with *identical observable state* to n scalar update()
// calls - the sampler is consumed in the same order, so the sampled sequence
// is the same for the same seed, and every queue/table mutation happens in
// the same order. The batch path is faster because it (a) pre-draws the
// chunk's sampling decisions with random_table_sampler::fill, (b) hashes the
// chunk's keys in one vectorizable pass and prefetches their flat-table
// slots, (c) hoists the per-packet frame/block boundary checks into a
// packets-until-boundary countdown per run, and (d) replaces the per-packet
// overflow division with a multiply-based divisibility test. Composite
// samplers (H-Memento) drive the same kernel through update_batch_decided.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "sketch/space_saving.hpp"
#include "util/compress.hpp"
#include "util/flat_hash.hpp"
#include "util/random.hpp"
#include "util/sliding_window_agg.hpp"
#include "util/wire.hpp"

namespace memento {

/// Construction parameters for `memento_sketch`.
struct memento_config {
  std::uint64_t window_size = 1 << 20;  ///< W, in packets
  std::size_t counters = 512;           ///< k: Space-Saving counters == blocks per frame
  double tau = 1.0;                     ///< Full-update probability; 1.0 == WCSS
  std::uint64_t seed = 1;               ///< sampler determinism handle

  /// The paper's parameterization k = ceil(4 / epsilon_a) (Section 4.1).
  [[nodiscard]] static memento_config from_epsilon(std::uint64_t window, double epsilon_a,
                                                   double tau = 1.0, std::uint64_t seed = 1) {
    memento_config c;
    c.window_size = window;
    c.counters = static_cast<std::size_t>(std::ceil(4.0 / epsilon_a));
    c.tau = tau;
    c.seed = seed;
    return c;
  }
};

template <typename Key = std::uint64_t>
class memento_sketch {
 public:
  /// A reported heavy hitter with its (one-sided) window-frequency estimate.
  struct heavy_hitter {
    Key key{};
    double estimate = 0.0;
  };

  explicit memento_sketch(const memento_config& config)
      : y_(config.counters > 0 ? config.counters : 1),
        overflow_peaks_(config.counters > 0 ? config.counters : 1),
        sampler_(config.tau, 1u << 16, config.seed),
        tau_(std::clamp(config.tau, 0.0, 1.0)),
        inv_tau_(tau_ > 0.0 ? 1.0 / tau_ : 0.0),
        k_(config.counters > 0 ? config.counters : 1),
        seed_(config.seed) {
    if (config.window_size == 0) throw std::invalid_argument("memento: W must be >= 1");
    if (config.counters == 0) throw std::invalid_argument("memento: counters must be >= 1");
    if (config.tau <= 0.0 || config.tau > 1.0) {
      throw std::invalid_argument("memento: tau must be in (0, 1]");
    }
    // Round the block length up so k * block >= W; the effective frame is
    // k * block packets (>= W, < W + k). All guarantees hold for the rounded
    // window, which `window_size()` reports.
    block_len_ = (config.window_size + k_ - 1) / k_;
    if (block_len_ == 0) block_len_ = 1;
    frame_len_ = block_len_ * k_;
    until_block_end_ = block_len_;
    // Overflow threshold in *sampled* units (see file comment).
    threshold_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::llround(static_cast<double>(frame_len_) * tau_ / static_cast<double>(k_))));
    // ceil(2^64 / T): `c * magic < magic` (mod 2^64) iff T divides c, for
    // T >= 2 [Lemire, Kaser & Granlund 2019]; T == 1 wraps magic to 0 and is
    // special-cased at the test site.
    threshold_magic_ = ~std::uint64_t{0} / threshold_ + 1;
    blocks_.resize(k_ + 1);
    overflows_.reserve(4 * k_);
  }

  memento_sketch(std::uint64_t window_size, std::size_t counters, double tau = 1.0,
                 std::uint64_t seed = 1)
      : memento_sketch(memento_config{window_size, counters, tau, seed}) {}

  /// Algorithm 1 UPDATE: Full update with probability tau, else Window update.
  void update(const Key& x) {
    if (sampler_.sample()) {
      full_update(x);
    } else {
      window_update();
    }
  }

  /// Batched UPDATE: equivalent to `for (i < n) update(xs[i])` - same sampled
  /// sequence for the same seed, same observable state afterwards - but
  /// amortizes sampling, hashing, and window bookkeeping over the batch (see
  /// file comment). This is the intended per-burst ingest call.
  void update_batch(const Key* xs, std::size_t n) {
    if (tau_ >= 1.0) {
      // WCSS regime: every packet is sampled; skip the decision buffer (the
      // scalar sampler does not consume the table when tau == 1 either).
      for (std::size_t i = 0; i < n; i += kBatchChunk) {
        process_chunk<true, true>(xs + i, nullptr, std::min(kBatchChunk, n - i));
      }
      return;
    }
    bool decisions[kBatchChunk];
    std::uint32_t idx[kBatchChunk];
    Key packed[kBatchChunk];
    for (std::size_t i = 0; i < n; i += kBatchChunk) {
      const std::size_t m = std::min(kBatchChunk, n - i);
      sampler_.fill(decisions, m);
      // Dense taus amortize a branch-free hash-precompute pass over every
      // slot; sparse taus compact the sampled positions and take the
      // gap-skipping kernel, whose cost tracks the sampled count.
      if (tau_ >= 0.125) {
        process_chunk<false, true>(xs + i, decisions, m);
      } else {
        std::size_t sampled = 0;
        for (std::size_t j = 0; j < m; ++j) {
          idx[sampled] = static_cast<std::uint32_t>(j);
          sampled += decisions[j] ? 1 : 0;  // branchless compaction
        }
        for (std::size_t t = 0; t < sampled; ++t) packed[t] = xs[i + idx[t]];
        update_batch_sampled(packed, idx, sampled, m);
      }
    }
  }

  void update_batch(std::span<const Key> xs) { update_batch(xs.data(), xs.size()); }

  /// Batched update with the Bernoulli decisions made by the caller
  /// (H-Memento samples prefixes with its own sampler and rng): packet i
  /// triggers a Full update of xs[i] iff decisions[i]; xs[i] is not read
  /// otherwise. Unsampled key slots are uninitialized, so the branch-free
  /// dense hash pass is off - instead the kernel prehashes and prefetches
  /// exactly the sampled slots (pass 1 below), which is what overlaps the
  /// counter-index misses when the caller's keys span a large table (the
  /// hierarchical frontend's H * k counters). Same equivalence guarantee.
  void update_batch_decided(const Key* xs, const bool* decisions, std::size_t n) {
    for (std::size_t i = 0; i < n; i += kBatchChunk) {
      process_chunk<false, false, true>(xs + i, decisions + i, std::min(kBatchChunk, n - i));
    }
  }

  /// Batched update with the caller's decisions in COMPACTED form: of a run
  /// of n packets, exactly `sampled` trigger Full updates - the t-th at
  /// position idx[t] (strictly increasing, < n) with key keys[t].
  /// State-identical to update_batch_decided over the expanded buffers, but
  /// the cost scales with the SAMPLED count plus retirements, not with n:
  /// unsampled gaps advance the window in bulk (advance_window), so a
  /// sparse-tau burst never walks per-packet scratch at all. This is the
  /// sparse-regime hot path of the hierarchical frontend
  /// (h_memento::update_batch) and of update_batch itself below tau 1/8.
  void update_batch_sampled(const Key* keys, const std::uint32_t* idx, std::size_t sampled,
                            std::size_t n) {
    std::size_t buckets[kBatchChunk];
    std::size_t pos = 0;
    for (std::size_t t0 = 0; t0 < sampled; t0 += kBatchChunk) {
      const std::size_t c = std::min(kBatchChunk, sampled - t0);
      // Hash + prefetch the chunk's sampled slots up front (the hash is
      // pure); the counter-index misses then overlap the gap walks.
      for (std::size_t u = 0; u < c; ++u) buckets[u] = y_.index_bucket(keys[t0 + u]);
      for (std::size_t u = 0; u < c; ++u) y_.prefetch_bucket(buckets[u]);
      for (std::size_t u = 0; u < c; ++u) {
        const std::size_t target = idx[t0 + u];
        advance_window(static_cast<std::uint64_t>(target - pos));
        window_update();  // the sampled packet's own clock tick + retirement
        full_add(keys[t0 + u], buckets[u]);
        pos = target + 1;
      }
    }
    advance_window(static_cast<std::uint64_t>(n - pos));
  }

  /// Algorithm 1 WINDOWUPDATE: advance the clock, expire frame/block state,
  /// retire (at most) one queued overflow of the oldest block. O(1). The
  /// block boundary fires on a decrementing countdown, not `clock % block`.
  void window_update() {
    ++stream_length_;
    ++clock_;
    if (clock_ == frame_len_) {  // new frame (M = 0)
      clock_ = 0;
      y_.flush();
    }
    if (--until_block_end_ == 0) {
      until_block_end_ = block_len_;
      rotate_blocks();
    }
    retire_one();
  }

  /// Algorithm 1 FULLUPDATE: a Window update plus counting x in y and
  /// recording an overflow whenever x's in-frame sampled count crosses a
  /// multiple of the threshold. O(1).
  void full_update(const Key& x) {
    window_update();
    const std::uint64_t count = y_.add(x);
    if (count % threshold_ == 0) {  // overflow (Algorithm 1 line 15)
      blocks_[head_].items.push_back(x);
      ++overflows_.find_or_emplace(x, 0);
      ++appends_this_block_;
    }
  }

  /// Algorithm 1 QUERY: one-sided (never undercounting) window-frequency
  /// estimate of x, already scaled to original-packet units.
  [[nodiscard]] double query(const Key& x) const {
    const double residue = static_cast<double>(y_.query(x) % threshold_);
    const double t = static_cast<double>(threshold_);
    if (const std::uint32_t* b = overflows_.find(x)) {
      return inv_tau_ * (t * static_cast<double>(*b + 2) + residue);
    }
    return inv_tau_ * (2.0 * t + residue);  // no overflows (line 25)
  }

  /// Lower bound companion to query(): the estimate minus the worst-case
  /// width 4*T*tau^-1 (= epsilon_a * W for k = 4/epsilon_a), floored at 0.
  [[nodiscard]] double query_lower(const Key& x) const {
    return std::max(0.0, query(x) - estimate_width());
  }

  /// Midpoint of the [lower, upper] interval: a near-unbiased point estimate
  /// for threshold applications (e.g. rate-limit triggers) where the
  /// one-sided upper bound would systematically fire early.
  [[nodiscard]] double query_midpoint(const Key& x) const {
    return std::max(0.0, query(x) - 0.5 * estimate_width());
  }

  /// Worst-case width of the [lower, upper] estimate interval, in packets.
  [[nodiscard]] double estimate_width() const noexcept {
    return 4.0 * static_cast<double>(threshold_) * inv_tau_;
  }

  /// The one-sided slack every estimate carries even for a never-seen key:
  /// tau^-1 * 2T (Algorithm 1 line 25 with B[x] absent and zero residue) -
  /// query(x) >= miss_baseline() for every x. Subtracting it from query()
  /// yields the ATTRIBUTABLE window mass of a flow, which is the per-flow
  /// load signal the shard rebalancer samples candidates with
  /// (shard/rebalance.hpp).
  [[nodiscard]] double miss_baseline() const noexcept {
    return inv_tau_ * 2.0 * static_cast<double>(threshold_);
  }

  /// All window heavy hitters at threshold theta (fraction of W): flows whose
  /// one-sided estimate reaches theta * W. Guaranteed to contain every true
  /// window heavy hitter (every such flow overflows within the window).
  [[nodiscard]] std::vector<heavy_hitter> heavy_hitters(double theta) const {
    std::vector<heavy_hitter> out;
    out.reserve(overflows_.size());
    const double bar = theta * static_cast<double>(frame_len_);
    for_each_candidate([&](const Key& key, double est) {
      if (est >= bar) out.push_back({key, est});
    });
    std::sort(out.begin(), out.end(),
              [](const heavy_hitter& a, const heavy_hitter& b) { return a.estimate > b.estimate; });
    return out;
  }

  /// Iterates the candidate set (overflow-table entries - exactly the flows
  /// that accumulated at least one block within the window) without
  /// materializing a vector: fn(key, upper_estimate). The sharded frontend's
  /// merge path filters each shard's candidates in place through this hook,
  /// so a query across N shards allocates one output vector, not N+1.
  template <typename Fn>
  void for_each_candidate(Fn&& fn) const {
    overflows_.for_each([&](const Key& key, std::uint32_t) { fn(key, query(key)); });
  }

  /// Number of candidates for_each_candidate will visit; merge paths use it
  /// to reserve() their output exactly once.
  [[nodiscard]] std::size_t candidate_count() const noexcept { return overflows_.size(); }

  /// The k flows with the largest window estimates (ties broken
  /// arbitrarily). Candidates are the overflow-table entries - exactly the
  /// flows that accumulated at least one block within the window - so a
  /// flow needs roughly W/counters packets to be rankable, the same
  /// resolution as the estimates themselves.
  [[nodiscard]] std::vector<heavy_hitter> top(std::size_t k) const {
    std::vector<heavy_hitter> all;
    all.reserve(overflows_.size());
    for_each_candidate([&](const Key& key, double est) { all.push_back({key, est}); });
    const std::size_t keep = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(keep),
                      all.end(), [](const heavy_hitter& a, const heavy_hitter& b) {
                        return a.estimate > b.estimate;
                      });
    all.resize(keep);
    return all;
  }

  /// Keys with any live state (overflow entries plus in-frame counters);
  /// the candidate set for hierarchical output (Algorithm 2 line 6).
  [[nodiscard]] std::vector<Key> monitored_keys() const {
    std::vector<Key> keys;
    keys.reserve(overflows_.size() + y_.size());
    overflows_.for_each([&](const Key& key, std::uint32_t) { keys.push_back(key); });
    y_.for_each([&](const Key& key, std::uint64_t, std::uint64_t) {
      if (!overflows_.contains(key)) keys.push_back(key);
    });
    return keys;
  }

  // --- introspection ------------------------------------------------------

  /// Effective window size (W rounded up to a multiple of k; see ctor).
  [[nodiscard]] std::uint64_t window_size() const noexcept { return frame_len_; }
  [[nodiscard]] std::uint64_t block_length() const noexcept { return block_len_; }
  /// Position within the current frame (M in Algorithm 1: packets since the
  /// last frame flush, in [0, window_size())). The sharded frontend reads
  /// this to measure window-phase skew across shards.
  [[nodiscard]] std::uint64_t window_phase() const noexcept { return clock_; }
  [[nodiscard]] std::uint64_t overflow_threshold() const noexcept { return threshold_; }
  [[nodiscard]] std::size_t counters() const noexcept { return k_; }
  [[nodiscard]] double tau() const noexcept { return tau_; }
  /// Packets processed (window + full updates both advance the stream).
  [[nodiscard]] std::uint64_t stream_length() const noexcept { return stream_length_; }
  /// Live entries in the overflow table B.
  [[nodiscard]] std::size_t overflow_entries() const noexcept { return overflows_.size(); }
  /// Defensive-drain events (should stay 0; asserted in tests).
  [[nodiscard]] std::uint64_t forced_drains() const noexcept { return forced_drains_; }
  /// Overflow appends recorded in the (still open) current block.
  [[nodiscard]] std::uint64_t block_overflow_appends() const noexcept {
    return appends_this_block_;
  }
  /// Peak per-block overflow-append count over the last k COMPLETED blocks
  /// (one frame's worth): the window-burstiness signal. Maintained by a
  /// two-stacks SIMD incremental aggregate (util/sliding_window_agg.hpp) -
  /// O(1) amortized per block, vectorized suffix-max on the flip.
  /// Introspection only: not serialized, so a restored sketch starts the
  /// window fresh.
  [[nodiscard]] std::uint64_t block_overflow_peak() const noexcept {
    return overflow_peaks_.query();
  }
  /// Probe-behavior stats of the Space-Saving counter index (flat_hash).
  [[nodiscard]] flat_hash_stats counter_index_stats() const { return y_.index_stats(); }
  /// Probe-behavior stats of the overflow table B.
  [[nodiscard]] flat_hash_stats overflow_table_stats() const { return overflows_.stats(); }

  // --- snapshot support ------------------------------------------------------
  // A snapshot captures the complete algorithm state: configuration (from
  // which the derived geometry and the sampler's random table are rebuilt),
  // the in-frame Space-Saving structure, the overflow table B, the block-
  // queue ring (compacted: retired prefixes are dropped), the window clock,
  // and the sampler cursor. restore(save(s)) answers every query
  // bit-identically to s and - fed the same suffix - continues the stream
  // bit-identically (pinned by tests/snapshot_test.cpp).

  static constexpr std::uint16_t kWireTag = 0x4d53;  ///< "MS"
  static constexpr std::uint16_t kWireVersion = 1;
  /// Streamed framing (wire::sink/source): compressed columns + section CRC.
  static constexpr std::uint16_t kWireVersionStream = 2;

  /// Serializes the sketch as one versioned section.
  void save(wire::writer& w) const {
    const std::size_t tok = w.begin_section(kWireTag, kWireVersion);
    w.u64(frame_len_);
    w.varint(k_);
    w.f64(tau_);
    w.u64(seed_);
    w.u64(clock_);
    w.u64(stream_length_);
    w.u64(forced_drains_);
    w.varint(head_);
    w.varint(sampler_.cursor());
    y_.save(w);
    overflows_.save(w);
    for (const block_queue& q : blocks_) {
      w.varint(q.items.size() - q.next);  // compact: only live entries ship
      for (std::size_t i = q.next; i < q.items.size(); ++i) {
        wire::codec<Key>::put(w, q.items[i]);
      }
    }
    w.end_section(tok);
  }

  /// Rebuilds a sketch from save() output; nullopt on any malformed input
  /// (version/tag mismatch, inconsistent geometry, out-of-range clock or
  /// cursor, corrupt substructures) - never a crash or a partially
  /// constructed object. The derived quantities (block length, overflow
  /// threshold, sampler table) are recomputed from the serialized
  /// configuration, so only genuine state crosses the wire.
  [[nodiscard]] static std::optional<memento_sketch> restore(wire::reader& r) {
    std::uint16_t ptag = 0, pver = 0;
    if (r.peek_section(ptag, pver) && ptag == kWireTag && pver == kWireVersionStream) {
      wire::source src(r.rest());
      auto out = restore(src);
      if (!out) return std::nullopt;
      r.skip(src.consumed());
      return out;
    }
    std::uint16_t version = 0;
    wire::reader body;
    if (!r.open_section(kWireTag, version, body) || version != kWireVersion) return std::nullopt;

    std::uint64_t frame = 0, k = 0, seed = 0, clock = 0, stream = 0, drains = 0;
    std::uint64_t head = 0, cursor = 0;
    double tau = 0.0;
    if (!body.u64(frame) || !body.varint(k) || !body.f64(tau) || !body.u64(seed) ||
        !body.u64(clock) || !body.u64(stream) || !body.u64(drains) || !body.varint(head) ||
        !body.varint(cursor)) {
      return std::nullopt;
    }
    // The counter cap matches space_saving::kMaxRestoreCounters: it bounds
    // the transient allocation a crafted tiny snapshot can trigger.
    if (k == 0 || k > (std::uint64_t{1} << 18) || frame == 0) return std::nullopt;
    if (!(tau > 0.0) || tau > 1.0) return std::nullopt;  // excludes NaN too
    if (clock >= frame || head > k) return std::nullopt;

    memento_sketch out(memento_config{frame, static_cast<std::size_t>(k), tau, seed});
    // An honest save's frame length is block_len * k exactly; anything else
    // would silently shift every window boundary.
    if (out.frame_len_ != frame) return std::nullopt;
    if (!out.sampler_.set_cursor(static_cast<std::size_t>(cursor))) return std::nullopt;
    out.clock_ = clock;
    out.until_block_end_ = out.block_len_ - clock % out.block_len_;
    out.stream_length_ = stream;
    out.forced_drains_ = drains;
    out.head_ = static_cast<std::size_t>(head);

    auto y = space_saving<Key>::restore(body);
    if (!y || y->capacity() != out.k_) return std::nullopt;
    out.y_ = std::move(*y);
    if (!out.overflows_.restore(body)) return std::nullopt;
    for (block_queue& q : out.blocks_) {
      std::uint64_t n = 0;
      // Divide, don't multiply: a corrupt 2^61 count must fail the guard,
      // not wrap it and throw from the resize below.
      if (!body.varint(n) || n > body.remaining() / 8) return std::nullopt;
      q.items.resize(static_cast<std::size_t>(n));
      q.next = 0;
      for (auto& key : q.items) {
        if (!wire::codec<Key>::get(body, key)) return std::nullopt;
      }
    }
    if (!body.done()) return std::nullopt;
    return out;
  }

  /// Streamed counterpart of save(): scalars, the Space-Saving and overflow
  /// substructures in their streamed formats, then the block-queue ring as
  /// per-queue live counts followed by ONE concatenated key column (queue
  /// keys across the whole ring compress together - they are the same key
  /// universe).
  void save(wire::sink& s, bool packed = true) const {
    s.begin_section(kWireTag, kWireVersionStream);
    s.u8(packed ? wire::kCodecPacked : 0);
    s.u64(frame_len_);
    s.varint(k_);
    s.f64(tau_);
    s.u64(seed_);
    s.u64(clock_);
    s.u64(stream_length_);
    s.u64(forced_drains_);
    s.varint(head_);
    s.varint(sampler_.cursor());
    y_.save(s, packed);
    overflows_.save_stream(s, packed);
    std::size_t total = 0;
    for (const block_queue& q : blocks_) {
      const std::size_t live = q.items.size() - q.next;
      s.varint(live);
      total += live;
    }
    std::size_t qi = 0, ii = blocks_.empty() ? 0 : blocks_[0].next;
    wire::put_u64_array(s, total, packed, [&] {
      while (ii >= blocks_[qi].items.size()) ii = blocks_[++qi].next;
      return wire::codec<Key>::to_u64(blocks_[qi].items[ii++]);
    });
    s.end_section();
  }

  /// Rebuilds a sketch from streamed save() output; same validation contract
  /// as the buffered restore plus the section CRC.
  [[nodiscard]] static std::optional<memento_sketch> restore(wire::source& s) {
    std::uint16_t version = 0;
    if (!s.open_section(kWireTag, version) || version != kWireVersionStream) return std::nullopt;
    std::uint8_t flags = 0;
    if (!s.u8(flags) || (flags & ~wire::kCodecKnownMask) != 0) return std::nullopt;
    const bool packed = (flags & wire::kCodecPacked) != 0;
    std::uint64_t frame = 0, k = 0, seed = 0, clock = 0, stream = 0, drains = 0;
    std::uint64_t head = 0, cursor = 0;
    double tau = 0.0;
    if (!s.u64(frame) || !s.varint(k) || !s.f64(tau) || !s.u64(seed) || !s.u64(clock) ||
        !s.u64(stream) || !s.u64(drains) || !s.varint(head) || !s.varint(cursor)) {
      return std::nullopt;
    }
    if (k == 0 || k > (std::uint64_t{1} << 18) || frame == 0) return std::nullopt;
    if (!(tau > 0.0) || tau > 1.0) return std::nullopt;  // excludes NaN too
    if (clock >= frame || head > k) return std::nullopt;

    memento_sketch out(memento_config{frame, static_cast<std::size_t>(k), tau, seed});
    if (out.frame_len_ != frame) return std::nullopt;
    if (!out.sampler_.set_cursor(static_cast<std::size_t>(cursor))) return std::nullopt;
    out.clock_ = clock;
    out.until_block_end_ = out.block_len_ - clock % out.block_len_;
    out.stream_length_ = stream;
    out.forced_drains_ = drains;
    out.head_ = static_cast<std::size_t>(head);

    auto y = space_saving<Key>::restore(s);
    if (!y || y->capacity() != out.k_) return std::nullopt;
    out.y_ = std::move(*y);
    if (!out.overflows_.restore_stream(s, packed)) return std::nullopt;
    // No byte-budget guard is possible on a stream, so cap the total queued
    // keys absolutely: an honest ring never holds more than ~W overflow
    // events, and 2^22 (32 MB of keys) is far above any tested config while
    // bounding what a lying count can make restore allocate.
    std::uint64_t total = 0;
    for (block_queue& q : out.blocks_) {
      std::uint64_t n = 0;
      if (!s.varint(n) || n > (std::uint64_t{1} << 22) - total) return std::nullopt;
      total += n;
      q.items.resize(static_cast<std::size_t>(n));
      q.next = 0;
    }
    std::size_t qi = 0, ii = 0;
    if (!wire::get_u64_array(s, static_cast<std::size_t>(total), packed, [&](std::uint64_t raw) {
          while (ii >= out.blocks_[qi].items.size()) {
            ++qi;
            ii = 0;
          }
          return wire::codec<Key>::from_u64(raw, out.blocks_[qi].items[ii++]);
        })) {
      return std::nullopt;
    }
    if (!s.close_section()) return std::nullopt;
    return out;
  }

 private:
  friend class snapshot_builder;  ///< reshard's bulk state loader (snapshot/reshard.hpp)

  /// Packets per batch-kernel chunk: bounds the decision/bucket scratch (256
  /// decisions + 256 buckets ~ 2.25 KB of stack) and the prefetch window.
  static constexpr std::size_t kBatchChunk = 256;

  /// FIFO queue of one block's overflow events. Retirement consumes from
  /// `next`, appends go to the back; storage is recycled on block reuse.
  struct block_queue {
    std::vector<Key> items;
    std::size_t next = 0;

    [[nodiscard]] bool empty() const noexcept { return next >= items.size(); }
    void clear() noexcept {
      items.clear();
      next = 0;
    }
  };

  /// The batch kernel: one chunk (m <= kBatchChunk) of packets, with the
  /// sampling decisions already drawn (dec, or every packet when AllSampled).
  /// Mutation order is exactly the scalar order - per packet: boundary work,
  /// one retirement, then the Full-update add - so batch and scalar runs are
  /// state-identical; only the bookkeeping around the mutations is hoisted.
  template <bool AllSampled, bool Prehashed, bool PrehashSampled = false>
  void process_chunk(const Key* xs, const bool* dec, std::size_t m) {
    static_assert(!(Prehashed && PrehashSampled), "pick one hash-precompute pass");
    // Pass 1 (dense regimes): hash every key of the chunk - a pure,
    // branch-free, vectorizable loop - and prefetch the home slots in the
    // counter index. With a small tau the precompute pass would re-walk the
    // decision buffer for a handful of hashes, so sampled adds hash inline
    // instead and this pass disappears. Externally-decided batches only
    // materialize sampled key slots, so they get the PrehashSampled variant:
    // hash + prefetch exactly the decided slots (the hash is pure, so doing
    // it early never perturbs state identity).
    std::size_t buckets[kBatchChunk];
    if constexpr (Prehashed) {
      for (std::size_t j = 0; j < m; ++j) buckets[j] = y_.index_bucket(xs[j]);
      for (std::size_t j = 0; j < m; ++j) y_.prefetch_bucket(buckets[j]);
    } else if constexpr (PrehashSampled) {
      for (std::size_t j = 0; j < m; ++j) {
        if (dec[j]) {
          buckets[j] = y_.index_bucket(xs[j]);
          y_.prefetch_bucket(buckets[j]);
        }
      }
    }
    constexpr bool kUseBuckets = Prehashed || PrehashSampled;
    // Pass 2: replay the packets in runs that end at the next frame/block
    // boundary, so the boundary test leaves the per-packet loop entirely.
    std::size_t j = 0;
    while (j < m) {
      const bool boundary = until_block_end_ <= static_cast<std::uint64_t>(m - j);
      const std::size_t run = boundary ? static_cast<std::size_t>(until_block_end_) : m - j;
      const std::size_t interior_end = j + run - (boundary ? 1 : 0);
      // Interior packets see no boundary. Retirements pop the oldest block's
      // queue while appends go to the newest, so once the tail queue drains
      // it stays empty for the rest of the run and the retire test vanishes.
      block_queue& tail = blocks_[tail_index()];
      for (; j < interior_end && !tail.empty(); ++j) {
        drop_oldest(tail);
        if (AllSampled || dec[j]) {
          full_add(xs[j], kUseBuckets ? buckets[j] : y_.index_bucket(xs[j]));
        }
      }
      for (; j < interior_end; ++j) {
        if (AllSampled || dec[j]) {
          full_add(xs[j], kUseBuckets ? buckets[j] : y_.index_bucket(xs[j]));
        }
      }
      stream_length_ += run;
      clock_ += run;
      if (boundary) {
        // The run's last packet closes a block: frame/block work happens
        // after its clock tick, before its own retirement and add - the
        // scalar window_update() order.
        if (clock_ == frame_len_) {
          clock_ = 0;
          y_.flush();
        }
        rotate_blocks();
        until_block_end_ = block_len_;
        retire_one();
        if (AllSampled || dec[j]) {
          full_add(xs[j], kUseBuckets ? buckets[j] : y_.index_bucket(xs[j]));
        }
        ++j;
      } else {
        until_block_end_ -= run;
      }
    }
  }

  /// Full-update tail for the batch path: the Space-Saving add (prehashed)
  /// plus the overflow test, with the per-packet `% threshold_` replaced by
  /// the multiply-based divisibility check (magic == 0 encodes T == 1).
  void full_add(const Key& x, std::size_t bucket) {
    const std::uint64_t count = y_.add_prehashed(bucket, x);
    if (count * threshold_magic_ < threshold_magic_ || threshold_ == 1) {
      blocks_[head_].items.push_back(x);
      ++overflows_.find_or_emplace(x, 0);
      ++appends_this_block_;
    }
  }

  /// r consecutive Window updates with no Full adds, in O(block boundaries
  /// + retirements) instead of O(r). Within one block segment the oldest
  /// queue is fixed and each packet retires at most one of its overflows,
  /// so the segment's combined effect is min(length, queued) drops; a
  /// boundary packet replays the scalar order exactly - flush at the frame
  /// edge, rotate, then its own retirement from the NEW oldest queue.
  /// Segment ends land on block boundaries, so `clock_ == frame_len_` is
  /// hit exactly, never jumped over (frame ends are block ends).
  void advance_window(std::uint64_t r) {
    stream_length_ += r;
    while (r >= until_block_end_) {
      const std::uint64_t run = until_block_end_;
      retire_up_to(run - 1);
      clock_ += run;
      r -= run;
      if (clock_ == frame_len_) {
        clock_ = 0;
        y_.flush();
      }
      rotate_blocks();
      until_block_end_ = block_len_;
      retire_one();
    }
    if (r > 0) {
      retire_up_to(r);
      clock_ += r;
      until_block_end_ -= r;
    }
  }

  /// At most `budget` retirements from the current oldest block's queue.
  void retire_up_to(std::uint64_t budget) {
    block_queue& q = blocks_[tail_index()];
    const auto avail = static_cast<std::uint64_t>(q.items.size() - q.next);
    for (std::uint64_t d = std::min(budget, avail); d > 0; --d) drop_oldest(q);
  }

  /// Ends the current block: the oldest queue leaves the window and a fresh
  /// one becomes current (Algorithm 1 lines 5-7).
  void rotate_blocks() {
    overflow_peaks_.push(appends_this_block_);  // the block just completed
    appends_this_block_ = 0;
    head_ = head_ + 1 == blocks_.size() ? 0 : head_ + 1;
    // The slot we are claiming held the expired oldest queue. De-amortized
    // retirement guarantees it is already empty; drain defensively if not so
    // the overflow table can never leak (counted for the tests).
    block_queue& reused = blocks_[head_];
    while (!reused.empty()) {
      ++forced_drains_;
      drop_oldest(reused);
    }
    reused.clear();
  }

  /// Retires at most one overflow of the oldest block (lines 8-11).
  void retire_one() {
    block_queue& tail = blocks_[tail_index()];
    if (!tail.empty()) drop_oldest(tail);
  }

  void drop_oldest(block_queue& q) {
    const Key& old_id = q.items[q.next++];
    if (std::uint32_t* count = overflows_.find(old_id)) {
      if (--(*count) == 0) overflows_.erase(old_id);
    }
  }

  /// Oldest live block: the slot after head in the (k+1)-ring.
  [[nodiscard]] std::size_t tail_index() const noexcept {
    return head_ + 1 == blocks_.size() ? 0 : head_ + 1;
  }

  space_saving<Key> y_;                       ///< in-frame sampled counts
  max_window_u64 overflow_peaks_;             ///< per-block append peaks, last k blocks
  random_table_sampler sampler_;              ///< Bernoulli(tau) decisions
  flat_hash<Key, std::uint32_t> overflows_;   ///< the table B
  std::vector<block_queue> blocks_;           ///< the queue-of-queues b (k+1 ring)
  std::size_t head_ = 0;                      ///< current block slot
  double tau_;
  double inv_tau_;
  std::size_t k_;
  std::uint64_t block_len_ = 1;
  std::uint64_t frame_len_ = 1;
  std::uint64_t threshold_ = 1;
  std::uint64_t threshold_magic_ = 0;  ///< ceil(2^64 / T); 0 encodes T == 1
  std::uint64_t clock_ = 0;            ///< M: position within the frame
  std::uint64_t until_block_end_ = 1;  ///< packets until the block boundary fires
  std::uint64_t stream_length_ = 0;
  std::uint64_t forced_drains_ = 0;
  std::uint64_t appends_this_block_ = 0;  ///< overflow appends in the open block
  std::uint64_t seed_ = 1;             ///< construction seed (snapshots rebuild the sampler from it)
};

}  // namespace memento
