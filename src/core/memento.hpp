// Memento (Algorithm 1): sliding-window heavy hitters with sampled Full
// updates and O(1) worst-case processing.
//
// The key idea (Section 4.1): decouple the expensive *Full update* (count the
// packet in the Space-Saving instance, record overflows) from the cheap
// *Window update* (advance the window clock and forget outdated data). Each
// packet triggers a Full update with probability tau and only a Window update
// otherwise, so Memento maintains a genuine W-packet window - avoiding the
// +-Theta(sqrt(W(1-tau)/tau)) reference-window error of naive uniform
// sampling - while paying the full data-structure cost on a tau fraction of
// packets. With tau = 1 Memento *is* WCSS [10].
//
// Structure (frames and blocks):
//   * the stream is cut into frames of W packets; each frame into k blocks;
//   * a Space-Saving instance `y` (k counters) approximately counts, within
//     the current frame, how often each item was *sampled*; it is flushed at
//     every frame boundary;
//   * every time an item's in-frame sampled count crosses a multiple of the
//     overflow threshold, the item is appended to the current block's queue
//     and its entry in the overflow table B is incremented;
//   * a ring of k+1 block queues covers the window; one queued item is
//     retired per packet (de-amortized, Algorithm 1 lines 8-11), so the
//     oldest queue is provably empty when its block expires.
//
// Overflow-threshold scaling: Algorithm 1 prints the threshold as W/k, which
// is exact for tau = 1. Under sampling, `y` counts *sampled* packets - about
// tau*W per frame - so the threshold must live in sampled units:
// T = max(1, round(W*tau/k)). Each overflow then still represents W/k
// *original* packets (T * tau^-1), which is what keeps the algorithm-side
// error epsilon_a = 4/k independent of tau, as required by Theorem 5.2 and
// matched by the flat error curves of Fig. 5. See DESIGN.md ("Design
// decisions"), item 3/4.
//
// Query (Algorithm 1 lines 22-25) returns a ONE-SIDED (over-)estimate:
// tau^-1 * (T*(B[x]+2) + (y.query(x) mod T)); the +2 blocks of slack absorb
// both the de-amortized retirement fuzz and the in-frame residue, mirroring
// MST's one-sided error. `query_lower` exposes the matching lower bound
// (upper minus the 4*T*tau^-1 worst-case width).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "sketch/space_saving.hpp"
#include "util/random.hpp"

namespace memento {

/// Construction parameters for `memento_sketch`.
struct memento_config {
  std::uint64_t window_size = 1 << 20;  ///< W, in packets
  std::size_t counters = 512;           ///< k: Space-Saving counters == blocks per frame
  double tau = 1.0;                     ///< Full-update probability; 1.0 == WCSS
  std::uint64_t seed = 1;               ///< sampler determinism handle

  /// The paper's parameterization k = ceil(4 / epsilon_a) (Section 4.1).
  [[nodiscard]] static memento_config from_epsilon(std::uint64_t window, double epsilon_a,
                                                   double tau = 1.0, std::uint64_t seed = 1) {
    memento_config c;
    c.window_size = window;
    c.counters = static_cast<std::size_t>(std::ceil(4.0 / epsilon_a));
    c.tau = tau;
    c.seed = seed;
    return c;
  }
};

template <typename Key = std::uint64_t>
class memento_sketch {
 public:
  /// A reported heavy hitter with its (one-sided) window-frequency estimate.
  struct heavy_hitter {
    Key key{};
    double estimate = 0.0;
  };

  explicit memento_sketch(const memento_config& config)
      : y_(config.counters > 0 ? config.counters : 1),
        sampler_(config.tau, 1u << 16, config.seed),
        tau_(std::clamp(config.tau, 0.0, 1.0)),
        inv_tau_(tau_ > 0.0 ? 1.0 / tau_ : 0.0),
        k_(config.counters > 0 ? config.counters : 1) {
    if (config.window_size == 0) throw std::invalid_argument("memento: W must be >= 1");
    if (config.counters == 0) throw std::invalid_argument("memento: counters must be >= 1");
    if (config.tau <= 0.0 || config.tau > 1.0) {
      throw std::invalid_argument("memento: tau must be in (0, 1]");
    }
    // Round the block length up so k * block >= W; the effective frame is
    // k * block packets (>= W, < W + k). All guarantees hold for the rounded
    // window, which `window_size()` reports.
    block_len_ = (config.window_size + k_ - 1) / k_;
    if (block_len_ == 0) block_len_ = 1;
    frame_len_ = block_len_ * k_;
    // Overflow threshold in *sampled* units (see file comment).
    threshold_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::llround(static_cast<double>(frame_len_) * tau_ / static_cast<double>(k_))));
    blocks_.resize(k_ + 1);
    overflows_.reserve(4 * k_);
  }

  memento_sketch(std::uint64_t window_size, std::size_t counters, double tau = 1.0,
                 std::uint64_t seed = 1)
      : memento_sketch(memento_config{window_size, counters, tau, seed}) {}

  /// Algorithm 1 UPDATE: Full update with probability tau, else Window update.
  void update(const Key& x) {
    if (sampler_.sample()) {
      full_update(x);
    } else {
      window_update();
    }
  }

  /// Algorithm 1 WINDOWUPDATE: advance the clock, expire frame/block state,
  /// retire (at most) one queued overflow of the oldest block. O(1).
  void window_update() {
    ++stream_length_;
    ++clock_;
    if (clock_ == frame_len_) {  // new frame (M = 0)
      clock_ = 0;
      y_.flush();
    }
    if (clock_ % block_len_ == 0) rotate_blocks();
    retire_one();
  }

  /// Algorithm 1 FULLUPDATE: a Window update plus counting x in y and
  /// recording an overflow whenever x's in-frame sampled count crosses a
  /// multiple of the threshold. O(1).
  void full_update(const Key& x) {
    window_update();
    y_.add(x);
    if (y_.query(x) % threshold_ == 0) {  // overflow (Algorithm 1 line 15)
      blocks_[head_].items.push_back(x);
      ++overflows_[x];
    }
  }

  /// Algorithm 1 QUERY: one-sided (never undercounting) window-frequency
  /// estimate of x, already scaled to original-packet units.
  [[nodiscard]] double query(const Key& x) const {
    const double residue = static_cast<double>(y_.query(x) % threshold_);
    const double t = static_cast<double>(threshold_);
    if (const auto it = overflows_.find(x); it != overflows_.end()) {
      return inv_tau_ * (t * static_cast<double>(it->second + 2) + residue);
    }
    return inv_tau_ * (2.0 * t + residue);  // no overflows (line 25)
  }

  /// Lower bound companion to query(): the estimate minus the worst-case
  /// width 4*T*tau^-1 (= epsilon_a * W for k = 4/epsilon_a), floored at 0.
  [[nodiscard]] double query_lower(const Key& x) const {
    return std::max(0.0, query(x) - estimate_width());
  }

  /// Midpoint of the [lower, upper] interval: a near-unbiased point estimate
  /// for threshold applications (e.g. rate-limit triggers) where the
  /// one-sided upper bound would systematically fire early.
  [[nodiscard]] double query_midpoint(const Key& x) const {
    return std::max(0.0, query(x) - 0.5 * estimate_width());
  }

  /// Worst-case width of the [lower, upper] estimate interval, in packets.
  [[nodiscard]] double estimate_width() const noexcept {
    return 4.0 * static_cast<double>(threshold_) * inv_tau_;
  }

  /// All window heavy hitters at threshold theta (fraction of W): flows whose
  /// one-sided estimate reaches theta * W. Guaranteed to contain every true
  /// window heavy hitter (every such flow overflows within the window).
  [[nodiscard]] std::vector<heavy_hitter> heavy_hitters(double theta) const {
    std::vector<heavy_hitter> out;
    const double bar = theta * static_cast<double>(frame_len_);
    for (const auto& [key, count] : overflows_) {
      (void)count;
      const double est = query(key);
      if (est >= bar) out.push_back({key, est});
    }
    std::sort(out.begin(), out.end(),
              [](const heavy_hitter& a, const heavy_hitter& b) { return a.estimate > b.estimate; });
    return out;
  }

  /// The k flows with the largest window estimates (ties broken
  /// arbitrarily). Candidates are the overflow-table entries - exactly the
  /// flows that accumulated at least one block within the window - so a
  /// flow needs roughly W/counters packets to be rankable, the same
  /// resolution as the estimates themselves.
  [[nodiscard]] std::vector<heavy_hitter> top(std::size_t k) const {
    std::vector<heavy_hitter> all;
    all.reserve(overflows_.size());
    for (const auto& [key, count] : overflows_) {
      (void)count;
      all.push_back({key, query(key)});
    }
    const std::size_t keep = std::min(k, all.size());
    std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(keep),
                      all.end(), [](const heavy_hitter& a, const heavy_hitter& b) {
                        return a.estimate > b.estimate;
                      });
    all.resize(keep);
    return all;
  }

  /// Keys with any live state (overflow entries plus in-frame counters);
  /// the candidate set for hierarchical output (Algorithm 2 line 6).
  [[nodiscard]] std::vector<Key> monitored_keys() const {
    std::vector<Key> keys;
    keys.reserve(overflows_.size() + y_.size());
    for (const auto& [key, count] : overflows_) {
      (void)count;
      keys.push_back(key);
    }
    y_.for_each([&](const Key& key, std::uint64_t, std::uint64_t) {
      if (overflows_.find(key) == overflows_.end()) keys.push_back(key);
    });
    return keys;
  }

  // --- introspection ------------------------------------------------------

  /// Effective window size (W rounded up to a multiple of k; see ctor).
  [[nodiscard]] std::uint64_t window_size() const noexcept { return frame_len_; }
  [[nodiscard]] std::uint64_t block_length() const noexcept { return block_len_; }
  [[nodiscard]] std::uint64_t overflow_threshold() const noexcept { return threshold_; }
  [[nodiscard]] std::size_t counters() const noexcept { return k_; }
  [[nodiscard]] double tau() const noexcept { return tau_; }
  /// Packets processed (window + full updates both advance the stream).
  [[nodiscard]] std::uint64_t stream_length() const noexcept { return stream_length_; }
  /// Live entries in the overflow table B.
  [[nodiscard]] std::size_t overflow_entries() const noexcept { return overflows_.size(); }
  /// Defensive-drain events (should stay 0; asserted in tests).
  [[nodiscard]] std::uint64_t forced_drains() const noexcept { return forced_drains_; }

 private:
  /// FIFO queue of one block's overflow events. Retirement consumes from
  /// `next`, appends go to the back; storage is recycled on block reuse.
  struct block_queue {
    std::vector<Key> items;
    std::size_t next = 0;

    [[nodiscard]] bool empty() const noexcept { return next >= items.size(); }
    void clear() noexcept {
      items.clear();
      next = 0;
    }
  };

  /// Ends the current block: the oldest queue leaves the window and a fresh
  /// one becomes current (Algorithm 1 lines 5-7).
  void rotate_blocks() {
    head_ = head_ + 1 == blocks_.size() ? 0 : head_ + 1;
    // The slot we are claiming held the expired oldest queue. De-amortized
    // retirement guarantees it is already empty; drain defensively if not so
    // the overflow table can never leak (counted for the tests).
    block_queue& reused = blocks_[head_];
    while (!reused.empty()) {
      ++forced_drains_;
      drop_oldest(reused);
    }
    reused.clear();
  }

  /// Retires at most one overflow of the oldest block (lines 8-11).
  void retire_one() {
    block_queue& tail = blocks_[tail_index()];
    if (!tail.empty()) drop_oldest(tail);
  }

  void drop_oldest(block_queue& q) {
    const Key& old_id = q.items[q.next++];
    const auto it = overflows_.find(old_id);
    if (it != overflows_.end() && --(it->second) == 0) overflows_.erase(it);
  }

  /// Oldest live block: the slot after head in the (k+1)-ring.
  [[nodiscard]] std::size_t tail_index() const noexcept {
    return head_ + 1 == blocks_.size() ? 0 : head_ + 1;
  }

  space_saving<Key> y_;                              ///< in-frame sampled counts
  random_table_sampler sampler_;                     ///< Bernoulli(tau) decisions
  std::unordered_map<Key, std::uint32_t> overflows_; ///< the table B
  std::vector<block_queue> blocks_;                  ///< the queue-of-queues b (k+1 ring)
  std::size_t head_ = 0;                             ///< current block slot
  double tau_;
  double inv_tau_;
  std::size_t k_;
  std::uint64_t block_len_ = 1;
  std::uint64_t frame_len_ = 1;
  std::uint64_t threshold_ = 1;
  std::uint64_t clock_ = 0;          ///< M: position within the frame
  std::uint64_t stream_length_ = 0;
  std::uint64_t forced_drains_ = 0;
};

}  // namespace memento
