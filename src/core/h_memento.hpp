// H-Memento (Algorithm 2): hierarchical heavy hitters on a sliding window in
// constant time per packet.
//
// Unlike MST/RHHH's lattice of H separate HH instances, H-Memento keeps a
// SINGLE large Memento instance and feeds it sampled *prefixes*: with
// probability tau the packet triggers a Full update of one uniformly chosen
// generalization (Figure 2b), otherwise only the shared window clock
// advances. Every prefix is therefore sampled with probability tau / H - the
// paper's V = H / tau balls-and-bins model - and one sliding window measures
// all subnets at once, which is what makes sliding-window HHH practical
// (Section 4.2: "engineering benefits such as code reuse, simplicity, and
// maintainability").
//
// Output (Algorithm 2 lines 3-10) walks the lattice bottom-up computing
// conditioned frequencies via calcPred (Algorithm 3 in 1D, Algorithm 4 with
// glb inclusion-exclusion in 2D) and compensates the sampling error with
// + 2 Z_{1-delta} sqrt(V W) (line 8). Correct for any
// tau >= Z_{1-delta/2} H W^-1 eps_s^-2 (Theorem 5.3).
//
// Template parameter H supplies the hierarchy (source_hierarchy with H = 5,
// two_dim_hierarchy with H = 25, or any user-defined traits with the same
// shape).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/memento.hpp"
#include "hierarchy/hhh_solver.hpp"
#include "util/normal.hpp"
#include "util/random.hpp"

namespace memento {

/// Construction parameters for `h_memento`.
struct h_memento_config {
  std::uint64_t window_size = 1 << 20;  ///< W, in packets
  std::size_t counters = 512 * 5;       ///< total counters of the single Memento instance
  double tau = 1.0;   ///< overall Full-update probability (per-prefix rate tau / H)
  double delta = 1e-3;///< confidence for the sampling compensation (Alg. 2 line 8)
  std::uint64_t seed = 1;
};

template <typename H>
class h_memento {
  static_assert(H::hierarchy_size <= 255,
                "h_memento: the batch kernel's level column is one byte per packet");

 public:
  using key_type = typename H::key_type;
  using hhh_result = std::vector<hhh_entry<key_type>>;

  explicit h_memento(const h_memento_config& config)
      : inner_(memento_config{config.window_size, config.counters, config.tau, config.seed}),
        sampler_(config.tau, 1u << 16, config.seed ^ 0x9e3779b97f4a7c15ULL),
        rng_(config.seed + 1),
        delta_(config.delta),
        seed_(config.seed) {
    if (config.delta <= 0.0 || config.delta >= 1.0) {
      throw std::invalid_argument("h_memento: delta must be in (0, 1)");
    }
  }

  h_memento(std::uint64_t window_size, std::size_t counters, double tau, double delta = 1e-3,
            std::uint64_t seed = 1)
      : h_memento(h_memento_config{window_size, counters, tau, delta, seed}) {}

  /// Algorithm 2 UPDATE: with probability tau, Full-update one uniformly
  /// random generalization of the packet; otherwise a Window update. O(1).
  void update(const packet& p) {
    if (sampler_.sample()) {
      full_update(p);
    } else {
      inner_.window_update();
    }
  }

  /// Batched UPDATE: state-identical to n scalar update(p) calls with the
  /// same seed (sampler and generalization rng are consumed in the same
  /// order). Per 256-packet chunk the pipeline is columnar:
  ///   1. bulk-draw the chunk's sampling decisions (random_table_sampler::fill)
  ///      and compact the sampled packet indices;
  ///   2. bulk-draw one generalization level per sampled packet
  ///      (xoshiro256::fill_bounded_u8 - the rng is consumed exactly as the
  ///      scalar path's per-sample bounded() calls would);
  ///   3. materialize the sampled prefix keys in 32-key blocks through the
  ///      hierarchy's vectorized mask kernel (H::materialize_keys ->
  ///      util/simd.hpp sllv prefix masking; a scalar-oracle loop for
  ///      hierarchies without the hook), scattered back to packet order;
  ///   4. replay through the inner Memento: dense taus scatter back to
  ///      packet order for the decided-batch kernel (prehash + prefetch of
  ///      every sampled slot); sparse taus keep the compacted form and take
  ///      update_batch_sampled, whose gap walk skips unsampled packets in
  ///      bulk, so chunk cost tracks the sampled count.
  void update_batch(const packet* ps, std::size_t n) {
    constexpr std::size_t kChunk = 256;
    bool decisions[kChunk];
    key_type keys[kChunk];
    std::uint32_t idx[kChunk];
    std::uint8_t levels[kChunk];
    key_type packed[kChunk];
    // Dense regime: most slots are sampled, so the decided kernel's
    // every-slot prehash pass is worth its scan. Sparse regime: hand the
    // COMPACTED keys straight to the gap-skipping kernel - no scatter back
    // to packet order, no per-packet decision walk downstream.
    const bool dense = inner_.tau() >= 0.25;
    for (std::size_t i = 0; i < n; i += kChunk) {
      const std::size_t m = std::min(kChunk, n - i);
      sampler_.fill(decisions, m);
      std::size_t sampled = 0;
      for (std::size_t j = 0; j < m; ++j) {
        idx[sampled] = static_cast<std::uint32_t>(j);
        sampled += decisions[j] ? 1 : 0;  // branchless compaction
      }
      rng_.fill_bounded_u8(levels, sampled, H::hierarchy_size);
      if constexpr (requires {
                      H::materialize_keys(ps, idx, levels, packed, sampled);
                    }) {
        H::materialize_keys(ps + i, idx, levels, packed, sampled);
      } else {
        for (std::size_t t = 0; t < sampled; ++t) {
          packed[t] = H::key_at(ps[i + idx[t]], levels[t]);
        }
      }
      if (dense) {
        for (std::size_t t = 0; t < sampled; ++t) keys[idx[t]] = packed[t];
        inner_.update_batch_decided(keys, decisions, m);
      } else {
        inner_.update_batch_sampled(packed, idx, sampled, m);
      }
    }
  }

  void update_batch(std::span<const packet> ps) { update_batch(ps.data(), ps.size()); }

  /// Forced Full update (the sampling decision was made elsewhere, e.g. by a
  /// D-H-Memento measurement point): inserts one random generalization.
  void full_update(const packet& p) {
    const auto i = static_cast<std::size_t>(rng_.bounded(H::hierarchy_size));
    inner_.full_update(H::key_at(p, i));
  }

  /// Forced Window update (unsampled packet replayed by the controller).
  void window_update() { inner_.window_update(); }

  /// One-sided (never undercounting) window-frequency estimate of a prefix,
  /// in packets: H * inner estimate, since each prefix is sampled at rate
  /// tau / H while the inner query rescales by tau^-1 only.
  [[nodiscard]] double query(const key_type& prefix) const {
    return static_cast<double>(H::hierarchy_size) * inner_.query(prefix);
  }

  /// Matching lower bound (upper minus the worst-case estimate width).
  [[nodiscard]] double query_lower(const key_type& prefix) const {
    return static_cast<double>(H::hierarchy_size) * inner_.query_lower(prefix);
  }

  /// Near-unbiased point estimate (see memento_sketch::query_midpoint).
  [[nodiscard]] double query_midpoint(const key_type& prefix) const {
    return static_cast<double>(H::hierarchy_size) * inner_.query_midpoint(prefix);
  }

  /// Algorithm 2 OUTPUT: the approximate window HHH set at threshold theta,
  /// with the paper's full sampling compensation (guarantees coverage but is
  /// deliberately loose - Definition 4.2 allows false positives).
  [[nodiscard]] hhh_result output(double theta) const {
    return output(theta, sampling_compensation());
  }

  /// OUTPUT with an explicit compensation term. Benches that compare
  /// *estimates* across algorithms symmetrically (e.g. the flood-detection
  /// rate-limiter of Section 6.3, which thresholds window frequency directly)
  /// pass 0 here.
  [[nodiscard]] hhh_result output(double theta, double compensation) const {
    const double threshold = theta * static_cast<double>(inner_.window_size());
    return solve_hhh<H>(
        inner_.monitored_keys(),
        [this](const key_type& k) {
          return freq_bounds{query(k), query_lower(k)};
        },
        threshold, compensation);
  }

  /// The Alg. 2 line 8 term: 2 Z_{1-delta} sqrt(V W), V = H / tau.
  [[nodiscard]] double sampling_compensation() const {
    const double v = sampling_ratio();
    return 2.0 * z_value(1.0 - delta_) *
           std::sqrt(v * static_cast<double>(inner_.window_size()));
  }

  /// V = H / tau: the expected packets per sampled prefix (Table 1).
  [[nodiscard]] double sampling_ratio() const noexcept {
    return static_cast<double>(H::hierarchy_size) / inner_.tau();
  }

  [[nodiscard]] std::uint64_t window_size() const noexcept { return inner_.window_size(); }
  [[nodiscard]] double tau() const noexcept { return inner_.tau(); }
  [[nodiscard]] double delta() const noexcept { return delta_; }
  [[nodiscard]] std::size_t counters() const noexcept { return inner_.counters(); }
  [[nodiscard]] std::uint64_t stream_length() const noexcept { return inner_.stream_length(); }

  /// Estimate floor in PREFIX units (H * the inner floor): query(x) is at
  /// least this for every x, so attributable prefix mass is est minus this.
  /// The shard rebalancer's load model consumes it (shard/rebalance.hpp).
  [[nodiscard]] double miss_baseline() const noexcept {
    return static_cast<double>(H::hierarchy_size) * inner_.miss_baseline();
  }

  /// Visits every candidate prefix with its one-sided window estimate in
  /// prefix units - the same scaling query() applies. The rebalancer samples
  /// per-bucket load from this; HHH output deliberately does NOT use it (the
  /// lattice walk needs monitored_keys(), which includes in-frame-only keys).
  template <typename Fn>
  void for_each_candidate(Fn&& fn) const {
    inner_.for_each_candidate([&](const key_type& key, double est) {
      fn(key, static_cast<double>(H::hierarchy_size) * est);
    });
  }

  [[nodiscard]] std::size_t candidate_count() const noexcept {
    return inner_.candidate_count();
  }

  /// The construction budget recovered from live state; feeding it back
  /// through the ctor reproduces the exact geometry (reshard rebuilds
  /// replacement shards from it).
  [[nodiscard]] h_memento_config config_snapshot() const noexcept {
    return h_memento_config{inner_.window_size(), inner_.counters(), inner_.tau(), delta_,
                            seed_};
  }
  /// Window-phase accessor (see memento_sketch::window_phase); lets a shard
  /// frontend monitor per-shard phase skew without reaching through inner().
  /// (Candidate iteration for HHH output deliberately stays on
  /// inner().monitored_keys(): the HHH candidate set must include keys with
  /// only in-frame state, which the overflow-table hook does not visit.)
  [[nodiscard]] std::uint64_t window_phase() const noexcept { return inner_.window_phase(); }
  [[nodiscard]] const memento_sketch<key_type>& inner() const noexcept { return inner_; }

  // --- snapshot support ------------------------------------------------------
  // On top of the inner Memento's snapshot, H-Memento only adds its own
  // sampler cursor and the generalization-choice PRNG state; both are
  // restored exactly, so a restored instance samples the same packets AND
  // picks the same prefixes - continuation is bit-identical.

  static constexpr std::uint16_t kWireTag = 0x484d;  ///< "HM"
  static constexpr std::uint16_t kWireVersion = 1;
  /// Streamed framing (wire::sink/source); HM adds no columns of its own,
  /// so no codec-flags byte here - the inner section carries one.
  static constexpr std::uint16_t kWireVersionStream = 2;

  /// Serializes the algorithm as one versioned section.
  void save(wire::writer& w) const {
    const std::size_t tok = w.begin_section(kWireTag, kWireVersion);
    w.f64(delta_);
    w.u64(seed_);
    w.varint(sampler_.cursor());
    for (const std::uint64_t word : rng_.state()) w.u64(word);
    inner_.save(w);
    w.end_section(tok);
  }

  /// Rebuilds an instance from save() output; nullopt on any malformed
  /// input (see memento_sketch::restore for the validation contract).
  [[nodiscard]] static std::optional<h_memento> restore(wire::reader& r) {
    std::uint16_t ptag = 0, pver = 0;
    if (r.peek_section(ptag, pver) && ptag == kWireTag && pver == kWireVersionStream) {
      wire::source src(r.rest());
      auto out = restore(src);
      if (!out) return std::nullopt;
      r.skip(src.consumed());
      return out;
    }
    std::uint16_t version = 0;
    wire::reader body;
    if (!r.open_section(kWireTag, version, body) || version != kWireVersion) return std::nullopt;

    double delta = 0.0;
    std::uint64_t seed = 0, cursor = 0;
    xoshiro256::state_type state{};
    if (!body.f64(delta) || !body.u64(seed) || !body.varint(cursor)) return std::nullopt;
    for (auto& word : state) {
      if (!body.u64(word)) return std::nullopt;
    }
    if (!(delta > 0.0) || !(delta < 1.0)) return std::nullopt;  // excludes NaN

    auto inner = memento_sketch<key_type>::restore(body);
    if (!inner || !body.done()) return std::nullopt;
    h_memento out(h_memento_config{inner->window_size(), inner->counters(), inner->tau(),
                                   delta, seed});
    out.inner_ = std::move(*inner);
    if (!out.sampler_.set_cursor(static_cast<std::size_t>(cursor))) return std::nullopt;
    if (!out.rng_.set_state(state)) return std::nullopt;
    return out;
  }

  /// Streamed counterpart of save(); the inner Memento section does the
  /// heavy lifting, HM itself contributes a handful of scalars.
  void save(wire::sink& s, bool packed = true) const {
    s.begin_section(kWireTag, kWireVersionStream);
    s.f64(delta_);
    s.u64(seed_);
    s.varint(sampler_.cursor());
    for (const std::uint64_t word : rng_.state()) s.u64(word);
    inner_.save(s, packed);
    s.end_section();
  }

  /// Rebuilds an instance from streamed save() output.
  [[nodiscard]] static std::optional<h_memento> restore(wire::source& s) {
    std::uint16_t version = 0;
    if (!s.open_section(kWireTag, version) || version != kWireVersionStream) return std::nullopt;
    double delta = 0.0;
    std::uint64_t seed = 0, cursor = 0;
    xoshiro256::state_type state{};
    if (!s.f64(delta) || !s.u64(seed) || !s.varint(cursor)) return std::nullopt;
    for (auto& word : state) {
      if (!s.u64(word)) return std::nullopt;
    }
    if (!(delta > 0.0) || !(delta < 1.0)) return std::nullopt;  // excludes NaN

    auto inner = memento_sketch<key_type>::restore(s);
    if (!inner || !s.close_section()) return std::nullopt;
    h_memento out(h_memento_config{inner->window_size(), inner->counters(), inner->tau(),
                                   delta, seed});
    out.inner_ = std::move(*inner);
    if (!out.sampler_.set_cursor(static_cast<std::size_t>(cursor))) return std::nullopt;
    if (!out.rng_.set_state(state)) return std::nullopt;
    return out;
  }

 private:
  friend class snapshot_builder;  ///< reshard's bulk state transport (snapshot/reshard.hpp)

  memento_sketch<key_type> inner_;
  random_table_sampler sampler_;
  xoshiro256 rng_;
  double delta_;
  std::uint64_t seed_ = 1;  ///< construction seed (snapshots rebuild the sampler from it)
};

}  // namespace memento
