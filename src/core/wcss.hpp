// WCSS [Ben-Basat et al., INFOCOM 2016]: Window Compact Space Saving.
//
// The paper's single-device HH baseline. Section 6.1: "For WCSS we use our
// Memento implementation without sampling (tau = 1)" - with tau = 1 every
// packet takes the Full-update path and Algorithm 1 degenerates to WCSS
// exactly (frames, blocks, overflow queues and the one-sided query are the
// WCSS machinery; sampling is Memento's only addition). We ship the same
// equivalence as a transparent alias plus a factory, so benchmarks read
// `wcss` where the paper says WCSS while sharing one tested implementation.
#pragma once

#include "core/memento.hpp"

namespace memento {

template <typename Key = std::uint64_t>
using wcss = memento_sketch<Key>;

/// Builds a WCSS instance: Memento with tau pinned to 1.
template <typename Key = std::uint64_t>
[[nodiscard]] wcss<Key> make_wcss(std::uint64_t window_size, std::size_t counters) {
  return wcss<Key>(memento_config{window_size, counters, /*tau=*/1.0, /*seed=*/1});
}

}  // namespace memento
