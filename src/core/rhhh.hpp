// RHHH [Ben Basat et al., SIGCOMM 2017]: Randomized HHH, the fastest known
// *interval* algorithm and the speed yardstick of Fig. 7.
//
// Same lattice as MST (H Space-Saving instances) but each packet updates AT
// MOST ONE instance: draw i uniformly in [1, V] (V >= H); if i <= H, feed the
// i'th generalization to instance i, else ignore the packet. Constant-time
// updates; estimates are scaled back by V and the output compensates the
// sampling error so that, with high probability, there are no false
// negatives.
//
// Sampling is implemented with a geometric skip counter, matching the
// original implementation - the very detail Section 6.2 credits for the
// crossover against H-Memento's random-table sampling ("in RHHH, sampling is
// implemented as a geometric random variable, which is inefficient for small
// sampling probabilities"). The ablation bench compares both schemes head on.
//
// RHHH does NOT extend to sliding windows (each instance would observe a
// different window); it is reproduced here as the interval baseline only.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "hierarchy/hhh_solver.hpp"
#include "sketch/space_saving.hpp"
#include "trace/packet.hpp"
#include "util/normal.hpp"
#include "util/random.hpp"

namespace memento {

struct rhhh_config {
  std::size_t counters_per_instance = 512;
  double sampling_ratio = 10.0;  ///< V >= H: each prefix updated w.p. 1/V
  double delta = 1e-3;           ///< confidence for the no-false-negative compensation
  std::uint64_t seed = 1;
};

template <typename H>
class rhhh {
 public:
  using key_type = typename H::key_type;
  using hhh_result = std::vector<hhh_entry<key_type>>;

  explicit rhhh(const rhhh_config& config)
      : skip_(static_cast<double>(H::hierarchy_size) / config.sampling_ratio, config.seed),
        rng_(config.seed + 17),
        v_(config.sampling_ratio),
        delta_(config.delta) {
    if (config.sampling_ratio < static_cast<double>(H::hierarchy_size)) {
      throw std::invalid_argument("rhhh: V must be >= H");
    }
    if (config.delta <= 0.0 || config.delta >= 1.0) {
      throw std::invalid_argument("rhhh: delta must be in (0, 1)");
    }
    instances_.reserve(H::hierarchy_size);
    for (std::size_t i = 0; i < H::hierarchy_size; ++i) {
      instances_.emplace_back(config.counters_per_instance);
    }
  }

  rhhh(std::size_t counters_per_instance, double sampling_ratio, double delta = 1e-3,
       std::uint64_t seed = 1)
      : rhhh(rhhh_config{counters_per_instance, sampling_ratio, delta, seed}) {}

  /// O(1) amortized: with probability H/V (geometric skips) pick one of the
  /// H generalizations uniformly and update its instance; else ignore.
  void update(const packet& p) {
    ++stream_length_;
    if (!skip_.sample()) return;
    const auto i = static_cast<std::size_t>(rng_.bounded(H::hierarchy_size));
    instances_[i].add(H::key_at(p, i));
  }

  /// Upper estimate of a prefix's interval frequency (scaled by V).
  [[nodiscard]] double query(const key_type& prefix) const {
    return v_ * static_cast<double>(instances_[H::pattern_index(prefix)].query(prefix));
  }

  [[nodiscard]] double query_lower(const key_type& prefix) const {
    return v_ * static_cast<double>(instances_[H::pattern_index(prefix)].query_lower(prefix));
  }

  /// The approximate interval HHH set at threshold theta (fraction of N),
  /// with the 2 Z_{1-delta} sqrt(V N) sampling compensation.
  [[nodiscard]] hhh_result output(double theta) const {
    const double n = static_cast<double>(stream_length_);
    return output(theta, 2.0 * z_value(1.0 - delta_) * std::sqrt(v_ * n));
  }

  /// OUTPUT with an explicit compensation term (see h_memento::output).
  [[nodiscard]] hhh_result output(double theta, double compensation) const {
    std::vector<key_type> candidates;
    for (const auto& inst : instances_) {
      inst.for_each([&](const key_type& k, std::uint64_t, std::uint64_t) {
        candidates.push_back(k);
      });
    }
    const double n = static_cast<double>(stream_length_);
    return solve_hhh<H>(
        std::move(candidates),
        [this](const key_type& k) {
          return freq_bounds{query(k), query_lower(k)};
        },
        theta * n, compensation);
  }

  /// Ends the measurement period.
  void reset() {
    for (auto& inst : instances_) inst.flush();
    stream_length_ = 0;
  }

  [[nodiscard]] std::uint64_t stream_length() const noexcept { return stream_length_; }
  [[nodiscard]] double sampling_ratio() const noexcept { return v_; }

 private:
  std::vector<space_saving<key_type>> instances_;
  geometric_sampler skip_;
  xoshiro256 rng_;
  double v_;
  double delta_;
  std::uint64_t stream_length_ = 0;
};

}  // namespace memento
