// MST [Mitzenmacher, Steinke & Thaler, ALENEX 2012]: the interval HHH
// baseline (Section 2 / Section 7).
//
// One Space-Saving instance per prefix pattern; every packet performs H
// updates - one per generalization - so the update cost is O(H) and the
// answer reflects the interval since the last reset. This is the "Interval"
// series of Fig. 8 and the conceptual parent of both the Baseline window
// algorithm (swap SS for WCSS, see baseline_window_mst.hpp) and RHHH (sample
// one of the H updates, see rhhh.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "hierarchy/hhh_solver.hpp"
#include "sketch/space_saving.hpp"
#include "trace/packet.hpp"

namespace memento {

template <typename H>
class mst {
 public:
  using key_type = typename H::key_type;
  using hhh_result = std::vector<hhh_entry<key_type>>;

  /// @param counters_per_instance Space-Saving counters in each of the H
  ///        instances (the paper's 1/epsilon_a per instance).
  explicit mst(std::size_t counters_per_instance) {
    instances_.reserve(H::hierarchy_size);
    for (std::size_t i = 0; i < H::hierarchy_size; ++i) {
      instances_.emplace_back(counters_per_instance);
    }
  }

  /// O(H): updates every generalization of the packet.
  void update(const packet& p) {
    for (std::size_t i = 0; i < H::hierarchy_size; ++i) {
      instances_[i].add(H::key_at(p, i));
    }
    ++stream_length_;
  }

  /// One-sided upper estimate of a prefix's interval frequency.
  [[nodiscard]] double query(const key_type& prefix) const {
    return static_cast<double>(instances_[H::pattern_index(prefix)].query(prefix));
  }

  [[nodiscard]] double query_lower(const key_type& prefix) const {
    return static_cast<double>(instances_[H::pattern_index(prefix)].query_lower(prefix));
  }

  /// The approximate interval HHH set at threshold theta (fraction of N).
  [[nodiscard]] hhh_result output(double theta) const {
    std::vector<key_type> candidates;
    for (const auto& inst : instances_) {
      inst.for_each([&](const key_type& k, std::uint64_t, std::uint64_t) {
        candidates.push_back(k);
      });
    }
    const double threshold = theta * static_cast<double>(stream_length_);
    return solve_hhh<H>(
        std::move(candidates),
        [this](const key_type& k) {
          return freq_bounds{query(k), query_lower(k)};
        },
        threshold, /*compensation=*/0.0);
  }

  /// Ends the measurement period (the Interval method's periodic reset).
  void reset() {
    for (auto& inst : instances_) inst.flush();
    stream_length_ = 0;
  }

  [[nodiscard]] std::uint64_t stream_length() const noexcept { return stream_length_; }
  [[nodiscard]] std::size_t counters_per_instance() const noexcept {
    return instances_.front().capacity();
  }

 private:
  std::vector<space_saving<key_type>> instances_;
  std::uint64_t stream_length_ = 0;
};

}  // namespace memento
