// Section 3 / Figure 1b: how fast does each measurement method detect a new
// heavy hitter?
//
// Scenario: a new flow appears at a uniformly random point of the interval
// grid and thereafter receives a constant fraction p = ratio * theta of the
// traffic (ratio >= 1). Three methods are compared (Section 3, "Motivation"):
//
//   * Window:            window frequency estimated on every arrival;
//                        detects at exactly (theta/p) W = W / ratio packets -
//                        the optimal detection point by definition.
//   * Improved interval: per-interval count checked on every arrival;
//                        detection can slip past an interval reset.
//   * Interval:          counts only inspected at interval boundaries.
//
// Both the closed-form expectations (derived below, matching the paper's
// "0.6-1.0 windows at ratio 2" and the "up to 40% faster" headline) and a
// packet-level Monte-Carlo simulation over exact counters are provided; the
// Fig. 1b bench prints them side by side as model vs. simulation.
//
// Closed forms (phi ~ U[0, W) is the flow's offset in its first interval,
// r = ratio, all times in windows):
//   window:   1/r
//   improved: detection needs W/r packets before the running interval ends;
//             succeeds immediately iff phi <= W(1 - 1/r), else waits for the
//             next interval:   E = (1 - 1/r) * (1/r)  +  (1/r) * (1/(2r) + 1/r)
//   interval: first interval's count suffices iff phi <= W(1 - 1/r), and the
//             report only arrives at the boundary: E = 1/2 + 1/r
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/random.hpp"

namespace memento::detection {

/// How far a per-shard coverage estimate may scale a detection bar away from
/// the nominal theta * W before the correction saturates. Past 2x imbalance
/// the drift model's stationarity assumption is gone and migration (the
/// coverage rebalancer), not bar scaling, is the right response; the clamp
/// keeps early-stream and post-reshard transients from swinging bars wildly.
inline constexpr double kCoverageScaleClamp = 2.0;

/// Drift-model correction factor for one shard (docs/ACCURACY.md,
/// "Coverage-scaled detection bars"): a shard whose window spans `coverage`
/// global packets instead of the nominal `window` sees a key's global-window
/// frequency scaled by coverage / window, so comparing its estimate against
/// theta * window really compares against a bar of theta * window^2 /
/// coverage. Multiplying the shard's estimates by window / coverage (equiv-
/// alently: judging them against theta * coverage) undoes the skew. Clamped
/// to [1/kCoverageScaleClamp, kCoverageScaleClamp]; degenerate coverage
/// (empty shard) scales by 1.
[[nodiscard]] inline double coverage_scale(double window, double coverage) noexcept {
  if (!(coverage > 0.0) || !(window > 0.0)) return 1.0;
  const double scale = window / coverage;
  if (scale > kCoverageScaleClamp) return kCoverageScaleClamp;
  if (scale < 1.0 / kCoverageScaleClamp) return 1.0 / kCoverageScaleClamp;
  return scale;
}

/// The per-shard detection bar itself: theta * coverage, with the same
/// saturation as coverage_scale. Under perfect balance this is exactly
/// theta * W_s * N, i.e. the global bar.
[[nodiscard]] inline double coverage_scaled_bar(double theta, double window,
                                                double coverage) noexcept {
  return theta * window / coverage_scale(window, coverage);
}

/// Expected detection delay of each method, in units of windows.
struct delays {
  double window = 0.0;
  double improved_interval = 0.0;
  double interval = 0.0;
};

/// Closed-form expectations for a new flow at `ratio` = p / theta >= 1.
[[nodiscard]] inline delays expected_delays(double ratio) {
  if (ratio < 1.0) throw std::invalid_argument("detection: ratio must be >= 1");
  const double inv = 1.0 / ratio;
  delays d;
  d.window = inv;
  d.improved_interval = (1.0 - inv) * inv + inv * (inv / 2.0 + inv);
  d.interval = 0.5 + inv;
  return d;
}

/// Packet-level Monte-Carlo: replays the scenario with exact counters.
///
/// Each trial draws a random interval phase, then streams packets; each
/// packet belongs to the new flow with probability p = ratio * theta and to
/// unique background flows otherwise. Detection indices are averaged over
/// trials and reported in windows.
///
/// @param ratio   p / theta (>= 1).
/// @param theta   the heavy-hitter threshold (fraction of W).
/// @param window  W in packets.
/// @param trials  Monte-Carlo repetitions.
[[nodiscard]] inline delays simulate_delays(double ratio, double theta, std::uint64_t window,
                                            std::size_t trials, std::uint64_t seed = 99) {
  if (ratio < 1.0) throw std::invalid_argument("detection: ratio must be >= 1");
  if (theta <= 0.0 || ratio * theta > 1.0) {
    throw std::invalid_argument("detection: need 0 < ratio * theta <= 1");
  }
  xoshiro256 rng(seed);
  const double p = ratio * theta;
  const auto bar = static_cast<std::uint64_t>(theta * static_cast<double>(window));

  double sum_window = 0.0;
  double sum_improved = 0.0;
  double sum_interval = 0.0;

  for (std::size_t t = 0; t < trials; ++t) {
    // Phase: packets already elapsed in the current interval when the flow
    // starts. The window method is phase-independent; the interval methods
    // are driven by it.
    const std::uint64_t phase = rng.bounded(window);

    std::uint64_t flow_in_window = 0;    // exact sliding count (flow only)
    std::uint64_t flow_in_interval = 0;  // exact count since interval start
    std::uint64_t detect_window = 0;
    std::uint64_t detect_improved = 0;
    std::uint64_t detect_interval = 0;

    // The flow's arrivals within the window form a queue of timestamps; with
    // p constant we only need the count (arrivals expire after W packets).
    // Track expiry with a compact ring of booleans.
    std::vector<bool> is_flow(window, false);
    std::size_t ring_pos = 0;

    const std::uint64_t horizon = 4 * window + (window - phase);
    for (std::uint64_t i = 0; i < horizon; ++i) {
      const bool flow_packet = rng.uniform01() < p;
      // Sliding window bookkeeping.
      if (is_flow[ring_pos]) --flow_in_window;
      is_flow[ring_pos] = flow_packet;
      ring_pos = ring_pos + 1 == window ? 0 : ring_pos + 1;
      if (flow_packet) ++flow_in_window;
      // Interval bookkeeping: a boundary occurs when (phase + i) % W == 0.
      if ((phase + i) % window == 0 && i > 0) {
        if (detect_interval == 0 && flow_in_interval >= bar) detect_interval = i;
        flow_in_interval = 0;
      }
      if (flow_packet) ++flow_in_interval;

      if (detect_window == 0 && flow_in_window >= bar) detect_window = i + 1;
      if (detect_improved == 0 && flow_in_interval >= bar) detect_improved = i + 1;
      if (detect_window && detect_improved && detect_interval) break;
    }
    // An undetected method (possible only for `interval` when the horizon is
    // short) is charged the full horizon - conservative and rare.
    if (detect_interval == 0) detect_interval = horizon;
    if (detect_improved == 0) detect_improved = horizon;
    if (detect_window == 0) detect_window = horizon;

    const double w = static_cast<double>(window);
    sum_window += static_cast<double>(detect_window) / w;
    sum_improved += static_cast<double>(detect_improved) / w;
    sum_interval += static_cast<double>(detect_interval) / w;
  }

  const double n = static_cast<double>(trials);
  return {sum_window / n, sum_improved / n, sum_interval / n};
}

}  // namespace memento::detection
