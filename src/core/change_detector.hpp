// Heavy-hitter set CHANGE detection on sliding windows - the direction the
// paper's conclusion names as future work: "a mechanism that would allow
// constant-time updates for detection of changes in the (hierarchical) heavy
// hitters set".
//
// This module implements that mechanism for the prefix/flow-threshold set:
// it maintains, incrementally and in O(1) amortized time per packet, the set
// of keys whose window estimate is above the threshold, and emits an event
// stream of enter/leave transitions. Two ingredients keep it both O(1) and
// stable:
//
//   * Entry checks ride on Full updates only: a flow can only *become* a
//     heavy hitter by being counted, so checking the one key touched by each
//     Full update catches every entry (at the sketch's own granularity).
//   * Exit checks are de-amortized: each update probes one current member in
//     round-robin, so a member whose estimate decayed is noticed within
//     |members| updates - and |members| <= 1/theta_low + slack by definition
//     of the threshold, keeping the lag bounded and the per-packet cost O(1).
//   * Hysteresis (enter at theta_high, leave at theta_low < theta_high)
//     prevents flapping for flows hovering at the threshold.
//
// Works over any memento_sketch (plain HH) and, via h_memento's inner sketch
// keys, over prefix sets (see h_change_detector below).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "core/h_memento.hpp"
#include "core/memento.hpp"
#include "trace/packet.hpp"

namespace memento {

enum class change_kind : std::uint8_t { entered, left };

template <typename Key>
struct change_event {
  Key key{};
  change_kind kind = change_kind::entered;
  std::uint64_t at_packet = 0;  ///< stream position when the change was noticed
  double estimate = 0.0;        ///< the estimate that triggered the transition
};

/// Construction parameters for the detectors.
struct change_detector_config {
  double theta_high = 0.01;  ///< enter when estimate >= theta_high * W
  double theta_low = 0.008;  ///< leave when estimate < theta_low * W
};

template <typename Key = std::uint64_t>
class hh_change_detector {
 public:
  hh_change_detector(const memento_config& sketch_config,
                     const change_detector_config& config)
      : sketch_(sketch_config), config_(config) {
    if (config.theta_low <= 0.0 || config.theta_low > config.theta_high ||
        config.theta_high >= 1.0) {
      throw std::invalid_argument("change_detector: need 0 < theta_low <= theta_high < 1");
    }
    sampler_.set_probability(sketch_.tau());
  }

  /// Processes one packet; O(1) amortized (one sketch update, at most one
  /// entry check and one round-robin exit probe).
  void update(const Key& x) {
    const bool full = sketch_update(x);
    if (full) check_entry(x);
    probe_one_member();
  }

  /// Drains the accumulated enter/leave events (oldest first).
  [[nodiscard]] std::vector<change_event<Key>> poll_events() {
    std::vector<change_event<Key>> out;
    out.swap(events_);
    return out;
  }

  /// The current heavy-hitter set (keys whose estimate was last seen above
  /// the low-water threshold).
  [[nodiscard]] std::vector<Key> current_set() const {
    std::vector<Key> out;
    out.reserve(members_.size());
    for (const auto& [key, live] : members_) {
      if (live) out.push_back(key);
    }
    return out;
  }

  [[nodiscard]] bool contains(const Key& x) const {
    const auto it = members_.find(x);
    return it != members_.end() && it->second;
  }

  [[nodiscard]] const memento_sketch<Key>& sketch() const noexcept { return sketch_; }
  [[nodiscard]] std::size_t set_size() const noexcept { return live_count_; }

 private:
  /// Runs the sketch update through the public full/window API with our own
  /// Bernoulli(tau) sampler, so the Full-update decision stays observable
  /// and the entry check runs exactly on counted packets.
  bool sketch_update(const Key& x) {
    if (sampler_.sample()) {
      sketch_.full_update(x);
      return true;
    }
    sketch_.window_update();
    return false;
  }

  void check_entry(const Key& x) {
    if (contains(x)) return;
    const double estimate = sketch_.query_midpoint(x);
    if (estimate >= config_.theta_high * static_cast<double>(sketch_.window_size())) {
      set_membership(x, true, estimate);
    }
  }

  void probe_one_member() {
    if (probe_queue_.empty()) return;
    if (probe_cursor_ >= probe_queue_.size()) {
      compact_probe_queue();
      if (probe_queue_.empty()) return;
    }
    const Key key = probe_queue_[probe_cursor_++];
    const auto it = members_.find(key);
    if (it == members_.end() || !it->second) return;  // already left
    const double estimate = sketch_.query_midpoint(key);
    if (estimate < config_.theta_low * static_cast<double>(sketch_.window_size())) {
      set_membership(key, false, estimate);
    }
  }

  void set_membership(const Key& key, bool live, double estimate) {
    auto [it, inserted] = members_.try_emplace(key, live);
    if (!inserted) {
      if (it->second == live) return;
      it->second = live;
    }
    if (live) {
      probe_queue_.push_back(key);
      ++live_count_;
    } else {
      --live_count_;
    }
    events_.push_back({key, live ? change_kind::entered : change_kind::left,
                       sketch_.stream_length(), estimate});
  }

  /// Rebuilds the round-robin queue from the live members (runs once per
  /// full pass; amortized O(1) per update).
  void compact_probe_queue() {
    probe_queue_.clear();
    for (const auto& [key, live] : members_) {
      if (live) probe_queue_.push_back(key);
    }
    // Drop long-dead entries so the map stays proportional to the live set.
    if (members_.size() > 4 * (live_count_ + 1)) {
      std::erase_if(members_, [](const auto& kv) { return !kv.second; });
    }
    probe_cursor_ = 0;
  }

  memento_sketch<Key> sketch_;
  change_detector_config config_;
  random_table_sampler sampler_{1.0, 1u << 16, 0x7e57ab1eULL};
  std::unordered_map<Key, bool> members_;  ///< key -> currently live
  std::vector<Key> probe_queue_;
  std::size_t probe_cursor_ = 0;
  std::size_t live_count_ = 0;
  std::vector<change_event<Key>> events_;
};

/// Hierarchical variant: monitors the *prefix-threshold* set (every prefix
/// whose estimated window share is above theta), which is the signal the
/// paper's mitigation application thresholds on. Entries are checked on the
/// sampled prefix of each Full update; exits by round-robin probing, as
/// above. (Maintaining the exact conditioned-frequency HHH set in O(1)
/// remains open, as the paper notes; the threshold set is the constant-time
/// approximation it calls for.)
template <typename H>
class h_change_detector {
 public:
  using key_type = typename H::key_type;

  h_change_detector(const h_memento_config& algo_config,
                    const change_detector_config& config)
      : inner_(memento_config{algo_config.window_size, algo_config.counters,
                              algo_config.tau, algo_config.seed},
               // The inner sketch sees one of H prefixes per sampled packet,
               // so its estimates are 1/H of packet units: rescale the
               // thresholds so callers express theta as a packet share.
               change_detector_config{
                   config.theta_high / static_cast<double>(H::hierarchy_size),
                   config.theta_low / static_cast<double>(H::hierarchy_size)}),
        rng_(algo_config.seed + 99) {}

  void update(const packet& p) {
    const auto i = static_cast<std::size_t>(rng_.bounded(H::hierarchy_size));
    inner_.update(H::key_at(p, i));
  }

  [[nodiscard]] std::vector<change_event<key_type>> poll_events() {
    auto events = inner_.poll_events();
    // Rescale trigger estimates to packet units (the inner sketch sees one
    // of H prefixes per sampled packet).
    for (auto& e : events) e.estimate *= static_cast<double>(H::hierarchy_size);
    return events;
  }

  [[nodiscard]] std::vector<key_type> current_set() const { return inner_.current_set(); }
  [[nodiscard]] bool contains(const key_type& k) const { return inner_.contains(k); }
  [[nodiscard]] std::size_t set_size() const noexcept { return inner_.set_size(); }

 private:
  hh_change_detector<key_type> inner_;
  xoshiro256 rng_;
};

}  // namespace memento
