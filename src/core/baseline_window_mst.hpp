// The "Baseline" sliding-window HHH algorithm of Section 6: MST with its
// interval Space-Saving instances replaced by WCSS, "a state of the art
// window algorithm", so the comparison is against "the best variant known
// today". Every packet performs H expensive Full updates (one per
// generalization), which is exactly why Fig. 6 shows H-Memento winning by up
// to 273x: H-Memento does at most one Full update per packet, the Baseline
// always does H.
//
// The paper splits a counter budget evenly: "the counters are utilized in H
// equally-sized WCSS instances" (e.g. 512H means 512 counters per instance).
#pragma once

#include <cstdint>
#include <vector>

#include "core/wcss.hpp"
#include "hierarchy/hhh_solver.hpp"
#include "trace/packet.hpp"

namespace memento {

template <typename H>
class baseline_window_mst {
 public:
  using key_type = typename H::key_type;
  using hhh_result = std::vector<hhh_entry<key_type>>;

  /// @param window_size    W, in packets (each instance slides over all W).
  /// @param total_counters split evenly into H WCSS instances (>= H).
  baseline_window_mst(std::uint64_t window_size, std::size_t total_counters) {
    const std::size_t per = std::max<std::size_t>(1, total_counters / H::hierarchy_size);
    instances_.reserve(H::hierarchy_size);
    for (std::size_t i = 0; i < H::hierarchy_size; ++i) {
      instances_.emplace_back(memento_config{window_size, per, /*tau=*/1.0, /*seed=*/1});
    }
  }

  /// O(H) Full updates per packet - the cost the paper's Fig. 6 measures.
  void update(const packet& p) {
    for (std::size_t i = 0; i < H::hierarchy_size; ++i) {
      instances_[i].update(H::key_at(p, i));
    }
  }

  /// One-sided window-frequency estimate of a prefix.
  [[nodiscard]] double query(const key_type& prefix) const {
    return instances_[H::pattern_index(prefix)].query(prefix);
  }

  [[nodiscard]] double query_lower(const key_type& prefix) const {
    return instances_[H::pattern_index(prefix)].query_lower(prefix);
  }

  /// The approximate window HHH set at threshold theta (fraction of W).
  [[nodiscard]] hhh_result output(double theta) const {
    std::vector<key_type> candidates;
    for (const auto& inst : instances_) {
      for (auto& k : inst.monitored_keys()) candidates.push_back(k);
    }
    const double threshold = theta * static_cast<double>(instances_.front().window_size());
    return solve_hhh<H>(
        std::move(candidates),
        [this](const key_type& k) {
          return freq_bounds{query(k), query_lower(k)};
        },
        threshold, /*compensation=*/0.0);
  }

  [[nodiscard]] std::uint64_t window_size() const noexcept {
    return instances_.front().window_size();
  }
  [[nodiscard]] std::size_t counters_per_instance() const noexcept {
    return instances_.front().counters();
  }
  [[nodiscard]] std::uint64_t stream_length() const noexcept {
    return instances_.front().stream_length();
  }

 private:
  std::vector<memento_sketch<key_type>> instances_;
};

}  // namespace memento
