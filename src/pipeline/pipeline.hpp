// Run-to-completion ingest pipeline: the staged trace -> shard -> detect ->
// mitigate path as one subsystem, with per-core contexts.
//
// Before this layer existed, the pieces only met inside short-lived bench
// main()s: the shard pool moved keys (not packets), detection and mitigation
// ran as caller-side loops, and every experiment re-plumbed them. This file
// is the appliance-shaped front door the ROADMAP's "millions of users" north
// star asks for: each core owns a core_context and runs EVERY stage to
// completion locally, the way real fast paths (DPDK-style run-to-completion,
// RSS-steered NIC queues) do - no packet crosses a core boundary after
// steering, and the only inter-thread traffic is the batched RX rings.
//
// Stages, per core:
//
//   ingest    a burst of trace/packet.hpp packets arrives as a zero-copy
//             span - from the core's RX ring (push front door) or straight
//             from its pre-steered packet_ring slice (pull/soak mode);
//   parse     flow keys are extracted in place from the packet span
//             (Traits::key_of); under `enforce`, packets from blocked /8
//             subnets are dropped here, before they cost a sketch update;
//   route     resolved before the ring: the producer (or the RSS pre-steer)
//             partitions by the same shard_partitioner the frontend routes
//             with, so core c's ring carries exactly shard c's keyspace;
//   update    the PR 2 batch kernel on the core's own shard;
//   detect    every detect_stride packets, the core aggregates its shard's
//             candidate set into per-/8-subnet window shares (read-only on
//             the sketch) and feeds them to its mitigation_policy;
//   mitigate  policy decisions (rate-limit / block / release) update the
//             core's 256-bit subnet bitmaps; `enforce` makes the parse
//             stage act on them, `observe` (default) only accounts.
//
// Drive modes:
//
//   * deterministic (no threads): process() steers each burst and runs the
//     stages inline, core by core, on the calling thread. State is
//     BIT-IDENTICAL to sharded_memento::update_batch over the same packets
//     (same partitioner, same per-shard subsequences, same batch kernel) -
//     the differential tests compare save() bytes. Detection defaults to
//     observe mode, which never writes the sketch, so turning it on keeps
//     the identity.
//   * threaded push: start() spawns one worker per core consuming its RX
//     ring; process()/offer() feed them under an explicit backpressure
//     policy (block = lossless, drop = tail-drop with exact per-core
//     accounting; see shard/backpressure.hpp). Same single-producer /
//     single-consumer-per-ring ownership discipline as the shard pool, so
//     the rings' acquire/release pairs are the only synchronization
//     (TSan-proven); drain() is the quiescence barrier, and rebalance()
//     rides it exactly like sharded_memento_pool.
//   * threaded pull (run_pull): one thread per core pulls bursts directly
//     from its pre-steered packet_ring until a deadline - the soak
//     configuration, with zero producer on the measured path. Per-burst
//     service latency lands in each core's latency_histogram.
//
// Detection semantics under sharding: a /8 subnet's flows spread across
// cores, so each core sees ~1/N of the subnet's traffic against a window of
// ~W/N packets - the per-shard share is an unbiased estimate of the global
// share (modulo the phase drift quantified in docs/ACCURACY.md), which is
// why per-core policies converge on the same subnets a global detector
// would flag without any cross-core coordination on the hot path.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "hierarchy/prefix1d.hpp"
#include "lb/mitigation_policy.hpp"
#include "shard/backpressure.hpp"
#include "shard/sharded_memento.hpp"
#include "shard/spsc_queue.hpp"
#include "trace/packet.hpp"
#include "trace/packet_ring.hpp"
#include "util/backoff.hpp"
#include "util/latency_histogram.hpp"

namespace memento {

/// How packets map into the measurement domain: the flow key the sketches
/// count, and the source address the detect stage aggregates into subnets.
/// The default is the repository-wide (src, dst) flow id.
struct flow_key_traits {
  using key_type = std::uint64_t;
  [[nodiscard]] static key_type key_of(const packet& p) noexcept { return flow_id(p); }
  [[nodiscard]] static std::uint32_t src_of(key_type key) noexcept {
    return static_cast<std::uint32_t>(key >> 32);
  }
};

struct pipeline_config {
  shard_config sharding;                 ///< cores == sharding.shards (one shard per core)
  std::size_t ring_capacity = 1u << 14;  ///< RX ring slots per core (packets)
  backpressure_policy policy = backpressure_policy::block;
  /// Packets between detection sweeps per core; 0 disables the detect and
  /// mitigate stages entirely (pure measurement pipeline).
  std::uint64_t detect_stride = 0;
  lb::mitigation_config mitigation{};  ///< thresholds for the mitigate stage
  /// false = observe (decisions only accounted - keeps deterministic mode
  /// bit-identical to the frontend); true = enforce (blocked subnets are
  /// dropped in the parse stage, before the sketch sees them).
  bool enforce = false;
};

/// Post-drain per-core accounting. `ingested` counts packets that entered
/// the core's stages; of those, `mitigated` were dropped by enforcement
/// before the update stage, the rest reached the sketch. rx holds the
/// producer-side ring counters (enqueued / drops / occupancy high-water
/// mark); ingested == rx.enqueued once drained.
struct core_report {
  std::size_t core = 0;
  std::uint64_t ingested = 0;
  std::uint64_t mitigated = 0;
  std::uint64_t bursts = 0;
  std::uint64_t detect_sweeps = 0;
  std::size_t active_rules = 0;
  ring_stats rx;
  latency_histogram latency;  ///< per-burst service time, nanoseconds
};

/// Whole-pipeline rollup: sums of the per-core counters plus the merged
/// latency histogram (bucket-exact, as if one histogram had seen every
/// burst).
struct pipeline_report {
  std::uint64_t ingested = 0;
  std::uint64_t mitigated = 0;
  std::uint64_t drops = 0;
  std::uint64_t bursts = 0;
  std::size_t active_rules = 0;
  std::uint64_t occupancy_hwm = 0;  ///< max over cores
  latency_histogram latency;
};

template <typename Traits = flow_key_traits>
class pipeline {
 public:
  using key_type = typename Traits::key_type;
  using frontend_type = sharded_memento<key_type>;
  using heavy_hitter = typename frontend_type::heavy_hitter;

  explicit pipeline(const pipeline_config& config)
      : config_(config), frontend_(config.sharding), rx_stats_(config.sharding.shards) {
    const std::size_t cores = config.sharding.shards;
    contexts_.reserve(cores);
    for (std::size_t c = 0; c < cores; ++c) {
      contexts_.push_back(std::make_unique<core_context>(config));
    }
  }

  ~pipeline() { stop(); }
  pipeline(const pipeline&) = delete;
  pipeline& operator=(const pipeline&) = delete;

  [[nodiscard]] std::size_t cores() const noexcept { return contexts_.size(); }
  [[nodiscard]] const pipeline_config& config() const noexcept { return config_; }

  /// The owning core of a packet - the route stage, exposed so callers
  /// (appliance RSS pre-steer, tests) steer with the authoritative hash.
  [[nodiscard]] std::size_t core_of(const packet& p) const noexcept {
    return frontend_.shard_of(Traits::key_of(p));
  }

  // --- threaded push front door --------------------------------------------

  /// Spawns one worker per core consuming its RX ring. Idempotent.
  void start() {
    if (started_) return;
    stop_.store(false, std::memory_order_release);
    workers_.reserve(cores());
    try {
      for (std::size_t c = 0; c < cores(); ++c) {
        workers_.emplace_back([this, c] { worker_loop(c); });
      }
    } catch (...) {
      stop_.store(true, std::memory_order_release);
      for (auto& w : workers_) w.join();
      workers_.clear();
      throw;
    }
    started_ = true;
  }

  /// Drains outstanding bursts, then stops and joins the workers. Safe to
  /// call when not started.
  void stop() {
    if (!started_) return;
    stop_.store(true, std::memory_order_release);
    for (auto& w : workers_) w.join();
    workers_.clear();
    started_ = false;
  }

  [[nodiscard]] bool started() const noexcept { return started_; }

  /// Steers a burst by flow key and delivers each core's packets - to its
  /// RX ring when started (under the configured backpressure policy), or
  /// through the stages inline (deterministic mode) otherwise. Single
  /// producer: call from one thread, like the shard pool's ingest().
  void process(const packet* pkts, std::size_t n) {
    if (steer_.empty()) steer_.resize(cores());
    partition_into(steer_, [this](const packet& p) { return core_of(p); }, pkts, n);
    for (std::size_t c = 0; c < cores(); ++c) {
      if (steer_[c].empty()) continue;
      if (started_) {
        offer(c, std::span<const packet>(steer_[c]));
      } else {
        run_stages(c, std::span<const packet>(steer_[c]), /*timed=*/false);
      }
    }
  }

  void process(std::span<const packet> pkts) { process(pkts.data(), pkts.size()); }

  /// Delivers an already-steered burst straight to one core's RX ring (the
  /// appliance path: RSS happened at trace load). Returns packets accepted;
  /// under block that is always burst.size(), under drop the shortfall has
  /// been counted in that core's ring stats. Requires started().
  std::size_t offer(std::size_t core, std::span<const packet> burst) {
    return offer_burst(*contexts_[core]->rx, burst.data(), burst.size(), config_.policy,
                       rx_stats_[core], producer_backoff_);
  }

  /// Blocks until every delivered packet has been run to completion. After
  /// drain() (and until the next process/offer) the calling thread may read
  /// the frontend and the reports - the rings' release-pop / acquire-empty
  /// pairs order every core-side write before this return, exactly as in
  /// sharded_memento_pool::drain().
  void drain() const {
    idle_backoff backoff;
    for (const auto& ctx : contexts_) {
      while (!ctx->rx->drained()) backoff.idle();
      backoff.reset();
    }
  }

  /// Skew-aware rebalance behind the drain barrier (see
  /// sharded_memento_pool::rebalance for why this is TSan-clean): workers
  /// re-resolve their shard after each ring acquire, so the swapped table
  /// publishes through the same release/acquire pairs that carry bursts.
  /// Subsequent process() calls steer with the new table; pre-steered
  /// pull-mode sources do NOT re-steer (run_pull is synchronous, so the two
  /// cannot interleave from the single producer thread anyway).
  template <typename Policy>
  bool rebalance(const Policy& policy) {
    drain();
    return frontend_.rebalance(policy);
  }

  // --- threaded pull mode (the soak configuration) -------------------------

  /// Runs every core to completion against its pre-steered source until
  /// `seconds` elapse (checked at burst granularity), pulling bursts of
  /// `burst` packets. No producer on the measured path; per-burst service
  /// time lands in each core's latency histogram. Requires !started();
  /// sources.size() must equal cores() (source c must hold core c's
  /// keyspace - use rss_steer with core_of). Returns wall seconds measured
  /// across the parallel section.
  double run_pull(std::span<packet_ring> sources, double seconds, std::size_t burst = 256) {
    if (started_) throw std::logic_error("pipeline: run_pull requires the push workers stopped");
    if (sources.size() != cores()) {
      throw std::invalid_argument("pipeline: need one pre-steered source per core");
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto deadline =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(seconds));
    std::vector<std::thread> pullers;
    pullers.reserve(cores());
    for (std::size_t c = 0; c < cores(); ++c) {
      pullers.emplace_back([this, c, &sources, burst, deadline] {
        while (std::chrono::steady_clock::now() < deadline) {
          const auto span = sources[c].next_burst(burst);
          if (span.empty()) break;  // empty slice: nothing this core can do
          run_stages(c, span, /*timed=*/true);
        }
      });
    }
    for (auto& p : pullers) p.join();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }

  // --- post-drain reads ----------------------------------------------------

  /// The deterministic frontend. Valid to read between drain() (or run_pull
  /// returning, or before start()) and the next delivery.
  [[nodiscard]] const frontend_type& frontend() const noexcept { return frontend_; }

  [[nodiscard]] std::vector<heavy_hitter> heavy_hitters(double theta) const {
    drain();
    return frontend_.heavy_hitters(theta);
  }

  /// Core c's producer-side ring counters (enqueued / drops / occupancy
  /// high-water mark). Unlike report(), this is owned by the producer
  /// thread and safe to read there WITHOUT draining - the controller's
  /// monitor samples load share from these between bursts.
  [[nodiscard]] const ring_stats& ingest_stats(std::size_t c) const noexcept {
    return rx_stats_[c];
  }

  /// Core c's accounting (same read discipline as frontend()).
  [[nodiscard]] core_report report(std::size_t c) const {
    const core_context& ctx = *contexts_[c];
    core_report r;
    r.core = c;
    r.ingested = ctx.ingested;
    r.mitigated = ctx.mitigated;
    r.bursts = ctx.bursts;
    r.detect_sweeps = ctx.detect_sweeps;
    r.active_rules = ctx.policy.active_rules();
    r.rx = rx_stats_[c];
    r.latency = ctx.latency;
    return r;
  }

  /// Sum of the per-core reports plus the merged latency histogram.
  [[nodiscard]] pipeline_report report() const {
    pipeline_report total;
    for (std::size_t c = 0; c < cores(); ++c) {
      const auto r = report(c);
      total.ingested += r.ingested;
      total.mitigated += r.mitigated;
      total.drops += r.rx.drops;
      total.bursts += r.bursts;
      total.active_rules += r.active_rules;
      if (r.rx.occupancy_hwm > total.occupancy_hwm) total.occupancy_hwm = r.rx.occupancy_hwm;
      total.latency.merge(r.latency);
    }
    return total;
  }

  /// True when core c currently blocks the given /8 subnet (enforce mode's
  /// parse-stage predicate, exposed for tests and introspection).
  [[nodiscard]] bool blocks(std::size_t core, std::uint32_t subnet_byte) const noexcept {
    return test_bit(contexts_[core]->blocked, subnet_byte);
  }

 private:
  /// Everything one core touches while running its stages - consumer-side
  /// state, owned by exactly one worker (or by the caller in deterministic
  /// mode). Heap-allocated one per core so neighboring cores never share a
  /// cache line.
  struct core_context {
    explicit core_context(const pipeline_config& config)
        : rx(std::make_unique<spsc_ring<packet>>(config.ring_capacity)),
          policy(config.mitigation) {}

    std::unique_ptr<spsc_ring<packet>> rx;
    std::vector<key_type> keys;                       ///< parse-stage scratch
    std::unordered_map<std::uint64_t, double> shares; ///< detect-stage scratch
    lb::mitigation_policy policy;
    std::array<std::uint64_t, 4> blocked{};  ///< 256-bit /8 deny bitmap
    bool any_blocked = false;
    std::uint64_t ingested = 0;
    std::uint64_t mitigated = 0;
    std::uint64_t bursts = 0;
    std::uint64_t detect_credit = 0;
    std::uint64_t detect_sweeps = 0;
    latency_histogram latency;
  };

  [[nodiscard]] static bool test_bit(const std::array<std::uint64_t, 4>& bits,
                                     std::uint32_t byte) noexcept {
    return (bits[(byte >> 6) & 3] >> (byte & 63)) & 1u;
  }
  static void assign_bit(std::array<std::uint64_t, 4>& bits, std::uint32_t byte,
                         bool on) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (byte & 63);
    if (on) {
      bits[(byte >> 6) & 3] |= mask;
    } else {
      bits[(byte >> 6) & 3] &= ~mask;
    }
  }

  /// The run-to-completion stage chain for one burst on one core. All state
  /// it touches is core c's own (context + shard), which is the whole
  /// thread-safety argument.
  void run_stages(std::size_t c, std::span<const packet> burst, bool timed) {
    core_context& ctx = *contexts_[c];
    const auto t0 = timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};

    // parse (in place from the packet span) + enforce-mode mitigate filter
    ctx.keys.clear();
    if (config_.enforce && ctx.any_blocked) {
      for (const packet& p : burst) {
        if (test_bit(ctx.blocked, p.src >> 24)) {
          ++ctx.mitigated;
          continue;
        }
        ctx.keys.push_back(Traits::key_of(p));
      }
    } else {
      for (const packet& p : burst) ctx.keys.push_back(Traits::key_of(p));
    }

    // update: the batch kernel on this core's own shard. Resolved after the
    // ring acquire (push mode), so a rebalance-swapped frontend publishes
    // through the same pairs as the bursts - see rebalance().
    if (!ctx.keys.empty()) {
      frontend_.shard_mut(c).update_batch(ctx.keys.data(), ctx.keys.size());
    }

    // detect -> mitigate, every detect_stride packets of this core's stream
    if (config_.detect_stride > 0) {
      ctx.detect_credit += burst.size();
      while (ctx.detect_credit >= config_.detect_stride) {
        ctx.detect_credit -= config_.detect_stride;
        detect_sweep(c);
      }
    }

    ctx.ingested += burst.size();
    ++ctx.bursts;
    if (timed) {
      const auto dt = std::chrono::steady_clock::now() - t0;
      ctx.latency.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
    }
  }

  /// One detection sweep on core c: aggregate the shard's candidate set
  /// into per-/8-subnet window shares (read-only on the sketch), let the
  /// mitigation policy grade them, and apply its transitions to the subnet
  /// bitmaps. O(candidates) - a few hundred entries, amortized across
  /// detect_stride packets.
  void detect_sweep(std::size_t c) {
    core_context& ctx = *contexts_[c];
    const auto& shard = frontend_.shard(c);
    const double window = static_cast<double>(shard.window_size());
    ctx.shares.clear();
    shard.for_each_candidate([&](const key_type& key, double est) {
      ctx.shares[prefix1d::make_key(Traits::src_of(key), 3)] += est / window;
    });
    for (const auto& d : ctx.policy.evaluate(ctx.shares)) {
      const std::uint32_t byte = prefix1d::key_addr(d.prefix_key) >> 24;
      assign_bit(ctx.blocked, byte, d.to == lb::mitigation_level::blocked);
    }
    ctx.any_blocked = (ctx.blocked[0] | ctx.blocked[1] | ctx.blocked[2] | ctx.blocked[3]) != 0;
    ++ctx.detect_sweeps;
  }

  void worker_loop(std::size_t c) {
    core_context& ctx = *contexts_[c];
    spsc_ring<packet>& ring = *ctx.rx;
    idle_backoff backoff;
    for (;;) {
      const auto [data, n] = ring.front_span();
      if (n == 0) {
        // Check stop only when empty: enqueued bursts always finish, so
        // stop() doubles as a drain (same contract as the shard pool).
        if (stop_.load(std::memory_order_acquire)) return;
        backoff.idle();
        continue;
      }
      backoff.reset();
      run_stages(c, std::span<const packet>(data, n), /*timed=*/true);
      ring.pop(n);
    }
  }

  pipeline_config config_;
  frontend_type frontend_;
  std::vector<std::unique_ptr<core_context>> contexts_;
  std::vector<std::vector<packet>> steer_;  ///< producer-side route scratch
  std::vector<ring_stats> rx_stats_;        ///< producer-side ring accounting
  idle_backoff producer_backoff_;           ///< producer's full-ring wait ladder
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace memento
