// Shared wire primitives for everything this repository serializes: the
// netwide control-channel codecs (netwide/codec.hpp, summary_channel.hpp)
// and the snapshot layer (snapshot/*.hpp, plus the save()/restore() members
// on the sketches themselves).
//
// Design rules, enforced here once so every consumer inherits them:
//
//   * fixed-width integers are little-endian with no padding - the byte
//     layout is the contract, identical across platforms;
//   * varints are LEB128 (7 bits per byte, low group first), capped at 10
//     bytes so a malformed stream cannot spin the decoder;
//   * every read is bounds-checked and returns false instead of touching
//     out-of-range memory - a decoder built on `reader` can be fed ANY byte
//     garbage and must only ever answer "no" (the fuzz tests in
//     tests/codec_test.cpp and tests/snapshot_test.cpp hold it to that);
//   * composite objects frame themselves with a versioned section header
//     (u16 tag | u16 version | u32 body length), so readers can reject
//     unknown tags/versions cheaply and skip to the end of what they do
//     understand.
//
// The reader never allocates; the writer only appends to one vector.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <type_traits>
#include <vector>

namespace memento::wire {

/// Append-only little-endian serializer. Sections nest (tokens are plain
/// byte offsets), and `take()` releases the buffer without a copy.
class writer {
 public:
  void reserve(std::size_t n) { out_.reserve(n); }

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }

  /// IEEE double by bit pattern (total order not needed; exactness is).
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// LEB128: 7 bits per byte, low group first, high bit = continuation.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  void bytes(std::span<const std::uint8_t> b) { out_.insert(out_.end(), b.begin(), b.end()); }

  /// Opens a versioned section: writes `u16 tag | u16 version | u32 length`
  /// with the length patched by end_section(). Returns the token to pass
  /// there. Sections may nest; close them innermost-first.
  [[nodiscard]] std::size_t begin_section(std::uint16_t tag, std::uint16_t version) {
    u16(tag);
    u16(version);
    const std::size_t token = out_.size();
    u32(0);  // length placeholder
    return token;
  }

  /// Closes the section opened at `token` (its body is everything written
  /// since). A body exceeding the u32 length field poisons the writer (see
  /// ok()) instead of silently wrapping the framing.
  void end_section(std::size_t token) {
    const std::size_t body = out_.size() - token - 4;
    if (body > std::numeric_limits<std::uint32_t>::max()) {
      overflowed_ = true;
      return;
    }
    const auto len = static_cast<std::uint32_t>(body);
    for (int i = 0; i < 4; ++i) out_[token + i] = static_cast<std::uint8_t>(len >> (8 * i));
  }

  /// False once any section body overflowed its length field; the buffer's
  /// framing is then corrupt and must not be shipped or stored.
  [[nodiscard]] bool ok() const noexcept { return !overflowed_; }

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return out_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(out_); }

 private:
  void put_le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> out_;
  bool overflowed_ = false;
};

/// Bounds-checked little-endian deserializer over a borrowed span. Every
/// getter returns false (and consumes nothing further) on truncation;
/// callers chain `if (!r.u32(x)) return std::nullopt;` style checks.
class reader {
 public:
  reader() = default;
  explicit reader(std::span<const std::uint8_t> in) noexcept : in_(in) {}

  [[nodiscard]] bool u8(std::uint8_t& v) noexcept {
    if (remaining() < 1) return false;
    v = in_[pos_++];
    return true;
  }

  [[nodiscard]] bool u16(std::uint16_t& v) noexcept { return get_le(v, 2); }
  [[nodiscard]] bool u32(std::uint32_t& v) noexcept { return get_le(v, 4); }
  [[nodiscard]] bool u64(std::uint64_t& v) noexcept { return get_le(v, 8); }

  [[nodiscard]] bool f64(double& v) noexcept {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }

  /// LEB128 decode; rejects streams running past 10 bytes (the 64-bit max)
  /// or overflowing 64 bits, so garbage cannot spin or wrap the decoder.
  [[nodiscard]] bool varint(std::uint64_t& v) noexcept {
    v = 0;
    for (int shift = 0; shift < 70; shift += 7) {
      std::uint8_t byte = 0;
      if (!u8(byte)) return false;
      if (shift == 63 && (byte & 0xFE)) return false;  // would overflow 64 bits
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if (!(byte & 0x80)) return true;
    }
    return false;
  }

  /// Borrows the next n bytes (no copy); false when fewer remain.
  [[nodiscard]] bool bytes(std::size_t n, std::span<const std::uint8_t>& out) noexcept {
    if (remaining() < n) return false;
    out = in_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

  /// Opens a section written by writer::begin_section: checks the tag,
  /// surfaces the version, hands back a reader bounded to the body, and
  /// advances this reader past it. Tag mismatch or a length running past
  /// the buffer is a decode failure.
  [[nodiscard]] bool open_section(std::uint16_t expected_tag, std::uint16_t& version,
                                  reader& body) noexcept {
    std::uint16_t tag = 0;
    std::uint32_t len = 0;
    if (!u16(tag) || !u16(version) || !u32(len)) return false;
    if (tag != expected_tag || len > remaining()) return false;
    body = reader(in_.subspan(pos_, len));
    pos_ += len;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return in_.size() - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == in_.size(); }

 private:
  template <typename T>
  [[nodiscard]] bool get_le(T& v, int n) noexcept {
    if (remaining() < static_cast<std::size_t>(n)) return false;
    std::uint64_t acc = 0;
    for (int i = 0; i < n; ++i) acc |= static_cast<std::uint64_t>(in_[pos_ + i]) << (8 * i);
    pos_ += static_cast<std::size_t>(n);
    v = static_cast<T>(acc);
    return true;
  }

  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

/// Key codec used by the templated sketch save()/restore() members. The
/// default covers the integral keys every sketch in this repository uses
/// (u32 addresses, u64 flow ids / prefix keys); other key types opt in by
/// specializing. Fixed 8-byte encoding: snapshot size is dominated by the
/// counter payloads, and a fixed width keeps the format trivially auditable.
template <typename T>
struct codec {
  static_assert(std::is_integral_v<T> && sizeof(T) <= 8,
                "specialize memento::wire::codec<T> for non-integral keys");

  static void put(writer& w, const T& v) {
    w.u64(static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<T>>(v)));
  }

  [[nodiscard]] static bool get(reader& r, T& v) noexcept {
    std::uint64_t raw = 0;
    if (!r.u64(raw)) return false;
    if constexpr (sizeof(T) < 8) {
      if (raw > static_cast<std::uint64_t>(std::make_unsigned_t<T>(-1))) return false;
    }
    v = static_cast<T>(raw);
    return true;
  }
};

}  // namespace memento::wire
