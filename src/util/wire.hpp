// Shared wire primitives for everything this repository serializes: the
// netwide control-channel codecs (netwide/codec.hpp, summary_channel.hpp)
// and the snapshot layer (snapshot/*.hpp, plus the save()/restore() members
// on the sketches themselves).
//
// Design rules, enforced here once so every consumer inherits them:
//
//   * fixed-width integers are little-endian with no padding - the byte
//     layout is the contract, identical across platforms;
//   * varints are LEB128 (7 bits per byte, low group first), capped at 10
//     bytes so a malformed stream cannot spin the decoder;
//   * every read is bounds-checked and returns false instead of touching
//     out-of-range memory - a decoder built on `reader` can be fed ANY byte
//     garbage and must only ever answer "no" (the fuzz tests in
//     tests/codec_test.cpp and tests/snapshot_test.cpp hold it to that);
//   * composite objects frame themselves with a versioned section header
//     (u16 tag | u16 version | u32 body length), so readers can reject
//     unknown tags/versions cheaply and skip to the end of what they do
//     understand.
//
// The reader never allocates; the writer only appends to one vector.
//
// Streamed (v2) sections: the buffer writer backpatches each section's u32
// length, which requires the whole body in memory at once. The chunked
// counterparts below - `sink` and `source` - drop that requirement: a
// streamed section's length field carries the kStreamLength sentinel (which
// a v1 reader rejects cleanly, since no real body exceeds the remaining
// buffer), the body is self-delimiting, and the section closes with a CRC32
// of its body bytes. The CRC is what keeps the nullopt-on-anything-wrong
// contract for compressed payloads: a bit flip inside a bit-packed array can
// decode to structurally valid but wrong state, so structure validation
// alone is not enough. A sink produces the same bytes whatever the chunk
// size - and the same bytes whether it flushes to a callback or fills one
// buffer - so streamed and buffered saves are byte-identical by construction.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <span>
#include <type_traits>
#include <vector>

namespace memento::wire {

/// Body-length sentinel of a streamed (v2-framing) section: the writer
/// cannot backpatch a length it has already flushed, so it declares the body
/// self-delimiting instead. A v1 `reader` rejects the sentinel as an
/// over-long body, which is exactly the clean failure wanted from readers
/// that predate streaming.
inline constexpr std::uint32_t kStreamLength = 0xFFFFFFFFu;

/// Incremental CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320): the
/// per-section integrity check of streamed sections. Table-driven; the table
/// is built once per process.
class crc32 {
 public:
  void update(const std::uint8_t* p, std::size_t n) noexcept {
    const std::uint32_t* t = table();
    std::uint32_t c = state_;
    for (std::size_t i = 0; i < n; ++i) c = t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    state_ = c;
  }

  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

 private:
  static const std::uint32_t* table() noexcept {
    static const std::array<std::uint32_t, 256> t = [] {
      std::array<std::uint32_t, 256> out{};
      for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        out[i] = c;
      }
      return out;
    }();
    return t.data();
  }

  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// Append-only little-endian serializer. Sections nest (tokens are plain
/// byte offsets), and `take()` releases the buffer without a copy.
class writer {
 public:
  void reserve(std::size_t n) { out_.reserve(n); }

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }

  /// IEEE double by bit pattern (total order not needed; exactness is).
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  /// LEB128: 7 bits per byte, low group first, high bit = continuation.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  void bytes(std::span<const std::uint8_t> b) { out_.insert(out_.end(), b.begin(), b.end()); }

  /// Opens a versioned section: writes `u16 tag | u16 version | u32 length`
  /// with the length patched by end_section(). Returns the token to pass
  /// there. Sections may nest; close them innermost-first.
  [[nodiscard]] std::size_t begin_section(std::uint16_t tag, std::uint16_t version) {
    u16(tag);
    u16(version);
    const std::size_t token = out_.size();
    u32(0);  // length placeholder
    return token;
  }

  /// Closes the section opened at `token` (its body is everything written
  /// since). A body exceeding the u32 length field poisons the writer (see
  /// ok()) instead of silently wrapping the framing.
  void end_section(std::size_t token) {
    const std::size_t body = out_.size() - token - 4;
    if (body > std::numeric_limits<std::uint32_t>::max()) {
      overflowed_ = true;
      return;
    }
    const auto len = static_cast<std::uint32_t>(body);
    for (int i = 0; i < 4; ++i) out_[token + i] = static_cast<std::uint8_t>(len >> (8 * i));
  }

  /// False once any section body overflowed its length field; the buffer's
  /// framing is then corrupt and must not be shipped or stored.
  [[nodiscard]] bool ok() const noexcept { return !overflowed_; }

  [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return out_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(out_); }

 private:
  void put_le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> out_;
  bool overflowed_ = false;
};

/// Bounds-checked little-endian deserializer over a borrowed span. Every
/// getter returns false (and consumes nothing further) on truncation;
/// callers chain `if (!r.u32(x)) return std::nullopt;` style checks.
class reader {
 public:
  reader() = default;
  explicit reader(std::span<const std::uint8_t> in) noexcept : in_(in) {}

  [[nodiscard]] bool u8(std::uint8_t& v) noexcept {
    if (remaining() < 1) return false;
    v = in_[pos_++];
    return true;
  }

  [[nodiscard]] bool u16(std::uint16_t& v) noexcept { return get_le(v, 2); }
  [[nodiscard]] bool u32(std::uint32_t& v) noexcept { return get_le(v, 4); }
  [[nodiscard]] bool u64(std::uint64_t& v) noexcept { return get_le(v, 8); }

  [[nodiscard]] bool f64(double& v) noexcept {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }

  /// LEB128 decode; rejects streams running past 10 bytes (the 64-bit max)
  /// or overflowing 64 bits, so garbage cannot spin or wrap the decoder.
  [[nodiscard]] bool varint(std::uint64_t& v) noexcept {
    v = 0;
    for (int shift = 0; shift < 70; shift += 7) {
      std::uint8_t byte = 0;
      if (!u8(byte)) return false;
      if (shift == 63 && (byte & 0xFE)) return false;  // would overflow 64 bits
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if (!(byte & 0x80)) return true;
    }
    return false;
  }

  /// Borrows the next n bytes (no copy); false when fewer remain.
  [[nodiscard]] bool bytes(std::size_t n, std::span<const std::uint8_t>& out) noexcept {
    if (remaining() < n) return false;
    out = in_.subspan(pos_, n);
    pos_ += n;
    return true;
  }

  /// Opens a section written by writer::begin_section: checks the tag,
  /// surfaces the version, hands back a reader bounded to the body, and
  /// advances this reader past it. Tag mismatch or a length running past
  /// the buffer is a decode failure.
  [[nodiscard]] bool open_section(std::uint16_t expected_tag, std::uint16_t& version,
                                  reader& body) noexcept {
    std::uint16_t tag = 0;
    std::uint32_t len = 0;
    if (!u16(tag) || !u16(version) || !u32(len)) return false;
    if (tag != expected_tag || len > remaining()) return false;
    body = reader(in_.subspan(pos_, len));
    pos_ += len;
    return true;
  }

  /// Peeks the next section's tag and version without consuming anything;
  /// false when fewer than four bytes remain. Restore paths use this to
  /// dispatch between the buffered (v1-framing) and streamed (v2-framing)
  /// forms of a type before committing to either decoder.
  [[nodiscard]] bool peek_section(std::uint16_t& tag, std::uint16_t& version) const noexcept {
    if (remaining() < 4) return false;
    tag = static_cast<std::uint16_t>(in_[pos_] | (in_[pos_ + 1] << 8));
    version = static_cast<std::uint16_t>(in_[pos_ + 2] | (in_[pos_ + 3] << 8));
    return true;
  }

  /// The unread remainder of the buffer (borrowed, nothing consumed); feed
  /// it to a buffer-backed `source`, then skip() what the source consumed.
  [[nodiscard]] std::span<const std::uint8_t> rest() const noexcept {
    return in_.subspan(pos_);
  }

  /// Advances past n bytes (clamped to the remainder).
  void skip(std::size_t n) noexcept { pos_ += std::min(n, remaining()); }

  [[nodiscard]] std::size_t remaining() const noexcept { return in_.size() - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == in_.size(); }

 private:
  template <typename T>
  [[nodiscard]] bool get_le(T& v, int n) noexcept {
    if (remaining() < static_cast<std::size_t>(n)) return false;
    std::uint64_t acc = 0;
    for (int i = 0; i < n; ++i) acc |= static_cast<std::uint64_t>(in_[pos_ + i]) << (8 * i);
    pos_ += static_cast<std::size_t>(n);
    v = static_cast<T>(acc);
    return true;
  }

  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

/// Chunked-stream counterpart of `writer`: same primitives, but bytes leave
/// through a backend callback every `chunk_bytes`, so serializing any amount
/// of state holds at most one chunk (plus the largest single put) in memory.
/// Sections use the streamed framing (kStreamLength sentinel + trailing
/// CRC32 of the body); they nest LIFO, each byte feeding exactly one CRC:
/// a section's body bytes feed its own, its header and trailing CRC bytes
/// feed its parent's. Backend failure or writing past finish() poisons the
/// sink (ok() goes false) instead of losing bytes silently.
class sink {
 public:
  using write_fn = std::function<bool(std::span<const std::uint8_t>)>;

  static constexpr std::size_t kDefaultChunk = 64 * 1024;

  explicit sink(write_fn out, std::size_t chunk_bytes = kDefaultChunk)
      : out_(std::move(out)), chunk_(chunk_bytes > 0 ? chunk_bytes : 1) {
    buf_.reserve(chunk_);
  }

  /// Buffer convenience: appends everything to `out` (identical bytes to the
  /// callback form - chunking only decides when flushes happen).
  explicit sink(std::vector<std::uint8_t>& out, std::size_t chunk_bytes = kDefaultChunk)
      : sink(
            [&out](std::span<const std::uint8_t> b) {
              out.insert(out.end(), b.begin(), b.end());
              return true;
            },
            chunk_bytes) {}

  void u8(std::uint8_t v) { put(&v, 1); }
  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void varint(std::uint64_t v) {
    std::uint8_t tmp[10];
    std::size_t n = 0;
    while (v >= 0x80) {
      tmp[n++] = static_cast<std::uint8_t>(v) | 0x80;
      v >>= 7;
    }
    tmp[n++] = static_cast<std::uint8_t>(v);
    put(tmp, n);
  }

  void bytes(std::span<const std::uint8_t> b) { put(b.data(), b.size()); }

  /// Opens a streamed section: `u16 tag | u16 version | u32 kStreamLength`.
  /// No token - streamed sections close innermost-first by construction.
  void begin_section(std::uint16_t tag, std::uint16_t version) {
    u16(tag);
    u16(version);
    u32(kStreamLength);
    crcs_.emplace_back();
  }

  /// Closes the innermost open section, appending the CRC32 of its body.
  void end_section() {
    if (crcs_.empty()) {
      failed_ = true;
      return;
    }
    const std::uint32_t c = crcs_.back().value();
    crcs_.pop_back();
    u32(c);
  }

  /// Flushes buffered bytes and seals the stream; sections still open or a
  /// backend failure leave the sink not ok(). Idempotent.
  bool finish() {
    if (!finished_) {
      if (!crcs_.empty()) failed_ = true;
      flush();
      finished_ = true;
    }
    return ok();
  }

  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  /// Total bytes put so far (buffered + flushed).
  [[nodiscard]] std::size_t bytes_written() const noexcept { return written_; }
  /// High-water mark of the internal buffer: the bounded-memory evidence a
  /// checkpointing caller can assert on (<= chunk + largest single put).
  [[nodiscard]] std::size_t peak_buffered() const noexcept { return peak_; }

 private:
  void put(const std::uint8_t* p, std::size_t n) {
    if (failed_ || finished_) {
      failed_ = true;
      return;
    }
    if (!crcs_.empty()) crcs_.back().update(p, n);
    buf_.insert(buf_.end(), p, p + n);
    written_ += n;
    if (buf_.size() > peak_) peak_ = buf_.size();
    if (buf_.size() >= chunk_) flush();
  }

  void put_le(std::uint64_t v, int n) {
    std::uint8_t tmp[8];
    for (int i = 0; i < n; ++i) tmp[i] = static_cast<std::uint8_t>(v >> (8 * i));
    put(tmp, static_cast<std::size_t>(n));
  }

  void flush() {
    if (buf_.empty()) return;
    if (!out_(std::span<const std::uint8_t>(buf_))) failed_ = true;
    buf_.clear();
  }

  write_fn out_;
  std::vector<std::uint8_t> buf_;
  std::vector<crc32> crcs_;  ///< one per open section, innermost last
  std::size_t chunk_;
  std::size_t written_ = 0;
  std::size_t peak_ = 0;
  bool failed_ = false;
  bool finished_ = false;
};

/// Validating pull-stream counterpart of `reader`: refills an internal
/// window from a backend callback (or walks a borrowed span without
/// copying), mirrors the sink's CRC stack, and latches failure on the first
/// short read, bad frame, or CRC mismatch - after which every getter
/// answers false, so decoders keep their chain-of-ifs shape.
class source {
 public:
  /// Backend: fill up to `n` bytes at `dst`, return how many (0 = EOF).
  using read_fn = std::function<std::size_t(std::uint8_t*, std::size_t)>;

  explicit source(read_fn in, std::size_t chunk_bytes = sink::kDefaultChunk)
      : in_(std::move(in)), chunk_(chunk_bytes > 0 ? chunk_bytes : 1) {}

  /// Buffer mode: reads walk `in` directly (no copy, no refills).
  explicit source(std::span<const std::uint8_t> in) noexcept : view_(in), buffered_(true) {}

  [[nodiscard]] bool u8(std::uint8_t& v) noexcept { return take(&v, 1); }
  [[nodiscard]] bool u16(std::uint16_t& v) noexcept { return get_le(v, 2); }
  [[nodiscard]] bool u32(std::uint32_t& v) noexcept { return get_le(v, 4); }
  [[nodiscard]] bool u64(std::uint64_t& v) noexcept { return get_le(v, 8); }

  [[nodiscard]] bool f64(double& v) noexcept {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    v = std::bit_cast<double>(bits);
    return true;
  }

  /// LEB128 decode with the same 10-byte / 64-bit caps as reader::varint.
  [[nodiscard]] bool varint(std::uint64_t& v) noexcept {
    v = 0;
    for (int shift = 0; shift < 70; shift += 7) {
      std::uint8_t byte = 0;
      if (!u8(byte)) return false;
      if (shift == 63 && (byte & 0xFE)) return false;
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if (!(byte & 0x80)) return true;
    }
    return false;
  }

  /// Copies the next n bytes into dst; false (latching) on truncation.
  [[nodiscard]] bool read(std::uint8_t* dst, std::size_t n) noexcept { return take(dst, n); }

  /// Opens a streamed section: checks the tag and the kStreamLength
  /// sentinel, surfaces the version, starts the body CRC.
  [[nodiscard]] bool open_section(std::uint16_t expected_tag, std::uint16_t& version) noexcept {
    std::uint16_t tag = 0;
    std::uint32_t len = 0;
    if (!u16(tag) || !u16(version) || !u32(len)) return false;
    if (tag != expected_tag || len != kStreamLength) return fail();
    crcs_.emplace_back();
    return true;
  }

  /// Closes the innermost open section: reads the stored CRC32 and compares
  /// it against the computed one. Any mismatch is a decode failure - this is
  /// what turns every bit flip in a streamed body into a deterministic
  /// nullopt instead of a silently wrong decode.
  [[nodiscard]] bool close_section() noexcept {
    if (crcs_.empty()) return fail();
    const std::uint32_t computed = crcs_.back().value();
    crcs_.pop_back();
    std::uint32_t stored = 0;
    if (!u32(stored)) return false;
    if (stored != computed) return fail();
    return true;
  }

  /// Total bytes consumed from the backend / span so far.
  [[nodiscard]] std::size_t consumed() const noexcept { return consumed_; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// True when the stream is exhausted: nothing buffered and the backend has
  /// no more bytes. Buffer mode: the span fully consumed. May pull one
  /// refill to find out; a failed source is never done.
  [[nodiscard]] bool done() noexcept {
    if (failed_) return false;
    if (buffered_) return pos_ == view_.size();
    if (pos_ < view_.size()) return false;
    return !refill();
  }

 private:
  [[nodiscard]] bool fail() noexcept {
    failed_ = true;
    return false;
  }

  bool take(std::uint8_t* dst, std::size_t n) noexcept {
    if (failed_) return false;
    while (n > 0) {
      if (pos_ == view_.size() && !refill()) return fail();
      const std::size_t run = std::min(n, view_.size() - pos_);
      std::memcpy(dst, view_.data() + pos_, run);
      if (!crcs_.empty()) crcs_.back().update(dst, run);
      pos_ += run;
      consumed_ += run;
      dst += run;
      n -= run;
    }
    return true;
  }

  template <typename T>
  [[nodiscard]] bool get_le(T& v, int n) noexcept {
    std::uint8_t tmp[8];
    if (!take(tmp, static_cast<std::size_t>(n))) return false;
    std::uint64_t acc = 0;
    for (int i = 0; i < n; ++i) acc |= static_cast<std::uint64_t>(tmp[i]) << (8 * i);
    v = static_cast<T>(acc);
    return true;
  }

  /// Stream mode only: pulls the next chunk from the backend. False at EOF.
  bool refill() noexcept {
    if (buffered_ || !in_) return false;
    buf_.resize(chunk_);
    const std::size_t got = in_(buf_.data(), buf_.size());
    if (got == 0) return false;
    buf_.resize(got);
    view_ = std::span<const std::uint8_t>(buf_);
    pos_ = 0;
    return true;
  }

  read_fn in_;
  std::vector<std::uint8_t> buf_;      ///< stream mode: the refill window
  std::span<const std::uint8_t> view_; ///< current readable bytes
  std::vector<crc32> crcs_;            ///< one per open section, innermost last
  std::size_t pos_ = 0;
  std::size_t chunk_ = 0;
  std::size_t consumed_ = 0;
  bool buffered_ = false;
  bool failed_ = false;
};

/// Key codec used by the templated sketch save()/restore() members. The
/// default covers the integral keys every sketch in this repository uses
/// (u32 addresses, u64 flow ids / prefix keys); other key types opt in by
/// specializing. Fixed 8-byte encoding: snapshot size is dominated by the
/// counter payloads, and a fixed width keeps the format trivially auditable.
template <typename T>
struct codec {
  static_assert(std::is_integral_v<T> && sizeof(T) <= 8,
                "specialize memento::wire::codec<T> for non-integral keys");

  static void put(writer& w, const T& v) {
    w.u64(static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<T>>(v)));
  }

  [[nodiscard]] static bool get(reader& r, T& v) noexcept {
    std::uint64_t raw = 0;
    if (!r.u64(raw)) return false;
    return from_u64(raw, v);
  }

  /// The same 8-byte value as put(), as an integer: the compressed-array
  /// codecs (util/compress.hpp) move keys through u64 columns instead of
  /// fixed 8-byte fields.
  [[nodiscard]] static std::uint64_t to_u64(const T& v) noexcept {
    return static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<T>>(v));
  }

  /// Inverse of to_u64 with the same range validation as get().
  [[nodiscard]] static bool from_u64(std::uint64_t raw, T& v) noexcept {
    if constexpr (sizeof(T) < 8) {
      if (raw > static_cast<std::uint64_t>(std::make_unsigned_t<T>(-1))) return false;
    }
    v = static_cast<T>(raw);
    return true;
  }
};

}  // namespace memento::wire
