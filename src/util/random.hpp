// Fast pseudo-random primitives used on the packet-processing hot path.
//
// The Memento paper (Section 6.2) attributes part of Memento's speed edge over
// RHHH to *how* sampling is implemented: RHHH draws a geometric random
// variable per sampled packet (expensive log/division at small probabilities),
// whereas Memento consults a precomputed random-number table. Both schemes are
// provided here so the ablation bench can reproduce that comparison:
//
//   * `random_table_sampler`  - table-driven Bernoulli(tau) decisions, O(1)
//                               with no floating point on the hot path.
//   * `geometric_sampler`     - skip-count sampling, one log() per *sampled*
//                               packet (amortized fast at small tau).
//
// The base generator is xoshiro256** seeded via splitmix64: fast, high
// quality, and deterministic across platforms, which keeps every experiment
// in this repository reproducible from a seed.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace memento {

/// splitmix64's full-avalanche finalizer: every output bit depends on every
/// input bit. Shared by the seed expander below and by flat_hash, which
/// masks hashes to a power-of-two range and so needs avalanched low bits.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// splitmix64 step; used to expand a single 64-bit seed into generator state.
/// Returns the next value and advances `state`.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  return mix64(state);
}

/// Maps a uniform 64-bit value into [0, n) without modulo bias or division
/// (Lemire's multiply-shift reduction). Consumes the *high* bits of x, so it
/// composes with mix64 even when a power-of-two consumer (flat_hash) is
/// already using the low bits of the same avalanche - the shard partitioner
/// relies on exactly that independence.
[[nodiscard]] constexpr std::uint64_t fastrange64(std::uint64_t x, std::uint64_t n) noexcept {
  __extension__ using uint128 = unsigned __int128;
  return static_cast<std::uint64_t>((static_cast<uint128>(x) * n) >> 64);
}

/// xoshiro256** by Blackman & Vigna: 256-bit state, period 2^256 - 1.
/// Satisfies the C++ UniformRandomBitGenerator requirements so it can be used
/// with <random> distributions in non-hot-path code.
class xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all four words from `seed` via splitmix64 (never all-zero).
  explicit constexpr xoshiro256(std::uint64_t seed = 0x8f1e9a2b5c3d7e4fULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) using the top 53 bits.
  [[nodiscard]] constexpr double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t bounded(std::uint64_t bound) noexcept {
    return fastrange64((*this)(), bound);
  }

  /// Bulk counterpart of bounded() for batched update paths (the level
  /// column of H-Memento's batch kernel): writes the next n draws from
  /// [0, bound) into out, consuming the generator exactly as n sequential
  /// bounded() calls would - same draws, same state afterwards - so batch
  /// and scalar consumers pick identical generalizations from one seed.
  /// bound must fit a byte (every byte-granularity lattice does: H <= 25).
  void fill_bounded_u8(std::uint8_t* out, std::size_t n, std::uint64_t bound) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>(fastrange64((*this)(), bound));
    }
  }

  using state_type = std::array<std::uint64_t, 4>;

  /// Generator state, for checkpoint/restore (snapshot layer). Restoring the
  /// state restores the exact output sequence.
  [[nodiscard]] constexpr state_type state() const noexcept { return state_; }

  /// Replaces the state. Rejects the all-zero state (the one fixpoint the
  /// generator cannot leave), so a malformed snapshot cannot wedge the PRNG.
  constexpr bool set_state(const state_type& s) noexcept {
    if ((s[0] | s[1] | s[2] | s[3]) == 0) return false;
    state_ = s;
    return true;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Table-driven Bernoulli(tau) sampler: the paper's "random number table"
/// (Section 6.2). A table of raw 64-bit draws is generated up front; each
/// decision is one table read and one integer comparison. The cursor wraps,
/// so the table acts as a recycled randomness pool: table_size only needs to
/// be large relative to the correlation structure the consumer cares about
/// (the benches use 2^16 entries, > 10x any counter count evaluated).
class random_table_sampler {
 public:
  /// @param tau        sampling probability in [0, 1].
  /// @param table_size number of precomputed draws (must be > 0).
  /// @param seed       PRNG seed for table generation.
  explicit random_table_sampler(double tau, std::size_t table_size = 1u << 16,
                                std::uint64_t seed = 1) {
    xoshiro256 rng(seed);
    table_.resize(table_size > 0 ? table_size : 1);
    for (auto& draw : table_) draw = rng();
    set_probability(tau);
  }

  /// Re-targets the sampler without regenerating the table.
  void set_probability(double tau) noexcept {
    if (tau >= 1.0) {
      threshold_ = std::numeric_limits<std::uint64_t>::max();
      always_ = true;
    } else if (tau <= 0.0) {
      threshold_ = 0;
      always_ = false;
    } else {
      threshold_ = static_cast<std::uint64_t>(
          tau * static_cast<double>(std::numeric_limits<std::uint64_t>::max()));
      always_ = false;
    }
  }

  /// One Bernoulli(tau) decision; O(1), no floating point.
  [[nodiscard]] bool sample() noexcept {
    if (always_) return true;
    const std::uint64_t draw = table_[cursor_];
    cursor_ = cursor_ + 1 == table_.size() ? 0 : cursor_ + 1;
    return draw < threshold_;
  }

  /// Bulk-decision API for batched update paths: writes the next n Bernoulli
  /// decisions into out, consuming the table exactly as n sequential sample()
  /// calls would (same draws, same cursor advance), so batch and scalar
  /// consumers see the same sampled sequence from the same seed. The inner
  /// loop is wrap-free (segmented at the table edge) and vectorizable.
  void fill(bool* out, std::size_t n) noexcept {
    if (always_) {
      std::fill_n(out, n, true);
      return;
    }
    std::size_t done = 0;
    while (done < n) {
      const std::size_t run = std::min(n - done, table_.size() - cursor_);
      const std::uint64_t* draws = table_.data() + cursor_;
      for (std::size_t i = 0; i < run; ++i) out[done + i] = draws[i] < threshold_;
      cursor_ += run;
      if (cursor_ == table_.size()) cursor_ = 0;
      done += run;
    }
  }

  [[nodiscard]] std::size_t table_size() const noexcept { return table_.size(); }

  /// Read cursor into the table, for checkpoint/restore: a sampler rebuilt
  /// from the same (tau, table_size, seed) with the cursor restored emits
  /// the exact decision sequence the original would have.
  [[nodiscard]] std::size_t cursor() const noexcept { return cursor_; }

  /// Restores the cursor; false (and no change) when out of range, so a
  /// malformed snapshot cannot park the cursor past the table.
  bool set_cursor(std::size_t c) noexcept {
    if (c >= table_.size()) return false;
    cursor_ = c;
    return true;
  }

 private:
  std::vector<std::uint64_t> table_;
  std::size_t cursor_ = 0;
  std::uint64_t threshold_ = 0;
  bool always_ = false;
};

/// Geometric skip-count sampler: decides Bernoulli(tau) per event by drawing,
/// once per *success*, the number of failures until the next success
/// (Geometric(tau) via inverse transform). This is RHHH's scheme; one `log`
/// per sampled packet, so cheap when tau is small and the skip is long, but
/// the per-sample cost dominates when tau is large. Exposed for the Fig. 7
/// discussion and the sampling ablation bench.
class geometric_sampler {
 public:
  explicit geometric_sampler(double tau, std::uint64_t seed = 1) noexcept
      : rng_(seed) {
    set_probability(tau);
  }

  void set_probability(double tau) noexcept {
    tau_ = tau;
    if (tau_ < 1.0 && tau_ > 0.0) {
      log1m_tau_ = std::log1p(-tau_);
    }
    skip_ = 0;
    draw_skip();
  }

  /// Returns true when this event is sampled.
  [[nodiscard]] bool sample() noexcept {
    if (tau_ >= 1.0) return true;
    if (tau_ <= 0.0) return false;
    if (skip_ > 0) {
      --skip_;
      return false;
    }
    draw_skip();
    return true;
  }

 private:
  void draw_skip() noexcept {
    if (tau_ >= 1.0 || tau_ <= 0.0) return;
    // Inverse-transform Geometric: floor(ln(U) / ln(1 - tau)), U in (0,1).
    double u = rng_.uniform01();
    if (u <= 0.0) u = 0x1.0p-53;
    skip_ = static_cast<std::uint64_t>(std::log(u) / log1m_tau_);
  }

  xoshiro256 rng_;
  double tau_ = 1.0;
  double log1m_tau_ = 0.0;
  std::uint64_t skip_ = 0;
};

}  // namespace memento
