// Two-stacks sliding-window aggregation (the HammerSlide shape
// [Theodorakis et al., ADMS 2018]; the functional-queue trick goes back to
// Okasaki): O(1) amortized push/pop/query over a window of the last N
// values for any associative operator, no per-element allocation.
//
// The queue is two stacks. The back stack is just the incoming values plus
// one running aggregate of all of them. The front stack holds outgoing
// values as a SUFFIX-aggregate array: front_agg_[i] = op(v_i, .., v_last),
// so evicting the oldest is a cursor bump and the front's current aggregate
// is one array read. When the front empties, the back is flipped into a
// fresh suffix array - the only O(n) moment, amortized O(1) because every
// element flips once. That flip is one right-to-left scan over a contiguous
// buffer, which is exactly the shape util/simd.hpp's suffix kernels
// vectorize (suffix_max_u64 for the max-aggregate used here); any other
// associative op runs the scalar flip.
//
// memento_sketch uses max_window<uint64_t> over per-block overflow-append
// counts: query() is the peak per-block overflow pressure across the last k
// completed blocks - the window-burstiness signal surfaced alongside the
// probe stats. Introspection state, not sketch state: it is NOT serialized
// (restore() starts a fresh window) and never feeds back into answers.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/simd.hpp"

namespace memento {

/// Associative max over std::uint64_t with a SIMD suffix flip.
struct agg_max_u64 {
  static std::uint64_t identity() noexcept { return 0; }
  std::uint64_t operator()(std::uint64_t a, std::uint64_t b) const noexcept {
    return a > b ? a : b;
  }
  /// dst[i] = max(src[i..n-1]); dispatched in util/simd.hpp.
  static void suffix(const std::uint64_t* src, std::uint64_t* dst, std::size_t n) {
    simd::suffix_max_u64(src, dst, n);
  }
};

/// Fixed-size two-stacks window over the last `window` pushed values.
/// Op must provide identity(), operator()(T, T) (associative), and
/// suffix(const T*, T*, n) computing the right-to-left inclusive scan.
template <typename T, typename Op = agg_max_u64>
class two_stacks_window {
 public:
  explicit two_stacks_window(std::size_t window) : window_(window) {
    assert(window >= 1);
    back_.reserve(window);
    front_agg_.reserve(window);
  }

  /// Appends v; evicts the oldest value first when the window is full.
  void push(T v) {
    if (size() == window_) pop();
    back_.push_back(v);
    back_agg_ = back_.size() == 1 ? v : Op{}(back_agg_, v);
  }

  /// Aggregate of every value currently in the window (identity when empty).
  [[nodiscard]] T query() const noexcept {
    const T front = front_pos_ < front_agg_.size() ? front_agg_[front_pos_] : Op::identity();
    const T back = back_.empty() ? Op::identity() : back_agg_;
    return Op{}(front, back);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return (front_agg_.size() - front_pos_) + back_.size();
  }

  [[nodiscard]] std::size_t window() const noexcept { return window_; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Drops every value; the window length is retained.
  void clear() noexcept {
    back_.clear();
    front_agg_.clear();
    front_pos_ = 0;
    back_agg_ = Op::identity();
  }

 private:
  /// Removes the oldest value. Flips the back stack into a fresh
  /// suffix-aggregate front when the front is exhausted - the amortized-O(1)
  /// moment, vectorized by Op::suffix.
  void pop() {
    assert(size() > 0);
    if (front_pos_ >= front_agg_.size()) {
      front_agg_.resize(back_.size());
      Op::suffix(back_.data(), front_agg_.data(), back_.size());
      back_.clear();
      back_agg_ = Op::identity();
      front_pos_ = 0;
    }
    ++front_pos_;
  }

  std::size_t window_;
  std::vector<T> back_;         ///< incoming values, newest last
  T back_agg_ = Op::identity();  ///< op over all of back_
  std::vector<T> front_agg_;    ///< suffix aggregates of the flipped values
  std::size_t front_pos_ = 0;   ///< consumed prefix of front_agg_
};

/// The window the sketches use: peak uint64 over the last `window` values.
using max_window_u64 = two_stacks_window<std::uint64_t, agg_max_u64>;

}  // namespace memento
