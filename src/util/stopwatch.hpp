// Minimal monotonic stopwatch for the harness mains that measure throughput
// outside google-benchmark (the accuracy figures time whole simulations, not
// tight loops, so steady_clock granularity is more than sufficient).
#pragma once

#include <chrono>

namespace memento {

class stopwatch {
 public:
  stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed wall time in seconds since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Throughput in million operations per second, guarding against zero time.
[[nodiscard]] inline double mops(std::size_t operations, double elapsed_seconds) noexcept {
  if (elapsed_seconds <= 0.0) return 0.0;
  return static_cast<double>(operations) / elapsed_seconds / 1e6;
}

}  // namespace memento
