// Section compression codecs for the streamed (v2) wire format: the
// in-repo answer to "snapshots are mostly small integers stored wide".
//
// Three array shapes cover everything the sketches serialize:
//
//   * put_u64_array / get_u64_array - general unsigned columns (keys, link
//     indices, table entries). Frame-of-reference per block of up to
//     kPackBlock values: `varint base | u8 bits | bit-packed (v - base)`,
//     so a column of nearby values (counter keys from one prefix range,
//     link indices bounded by k) costs bit_width(max - min) bits per value
//     instead of 8 bytes. bits == 0 encodes a constant block in two bytes.
//   * put_ascending_u64 / get_ascending_u64 - strictly ascending sequences
//     (flat_hash slot positions). Delta-minus-one transform first, then the
//     same FoR blocks; the decoder re-validates strict ascent, so the
//     sortedness the readers rely on cannot be forged.
//   * put_zigzag_u64 / get_zigzag_u64 - counter-like columns serialized in
//     near-sorted order (bucket counts ascending along the list). Zig-zag
//     varints of consecutive differences, exact for any u64 sequence via
//     mod-2^64 arithmetic.
//
// All writers take a generator (called once per value, in order) and all
// readers a consumer (returning false to reject a value), so neither side
// ever materializes the column: the block scratch (~16 KB of stack) is the
// whole memory footprint, which is what lets a sink checkpoint a 1M-counter
// deployment in bounded memory.
//
// The `packed` flag mirrors the section's codec-flags byte (kCodecPacked):
// a writer may emit plain varints instead of FoR blocks (testability, and
// the escape hatch for pathological columns), and the reader must be told
// which it is. Readers validate everything - bits <= 64, base + delta not
// wrapping - and the enclosing streamed section's CRC32 (wire::sink/source)
// catches what per-value validation cannot: a bit flip inside a packed
// block that still decodes to plausible values.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <utility>

#include "util/wire.hpp"

namespace memento::wire {

/// Values per frame-of-reference block; bounds the codec scratch to ~16 KB.
inline constexpr std::size_t kPackBlock = 1024;

/// Codec-flags byte of a v2 section: bit 0 = FoR bit-packing in use.
/// Unknown bits are a decode failure (they would change the byte layout).
inline constexpr std::uint8_t kCodecPacked = 0x01;
inline constexpr std::uint8_t kCodecKnownMask = 0x01;

namespace detail {

/// Packs m values of `bits` bits each, LSB-first, into out (zero-filled).
inline void pack_bits(const std::uint64_t* v, std::size_t m, unsigned bits,
                      std::uint8_t* out, std::size_t nbytes) {
  std::memset(out, 0, nbytes);
  std::size_t bitpos = 0;
  for (std::size_t i = 0; i < m; ++i, bitpos += bits) {
    std::uint64_t cur = v[i];
    std::size_t byte = bitpos >> 3;
    unsigned off = bitpos & 7;
    unsigned left = bits;
    while (left > 0) {
      out[byte] |= static_cast<std::uint8_t>(cur << off);
      const unsigned wrote = 8 - off;
      cur = wrote >= 64 ? 0 : cur >> wrote;
      left = left > wrote ? left - wrote : 0;
      ++byte;
      off = 0;
    }
  }
}

/// Reads the value at bit position `bitpos` (bits in [1, 64]).
[[nodiscard]] inline std::uint64_t unpack_one(const std::uint8_t* in, std::size_t bitpos,
                                              unsigned bits) noexcept {
  std::uint64_t v = 0;
  unsigned got = 0;
  std::size_t byte = bitpos >> 3;
  unsigned off = bitpos & 7;
  while (got < bits) {
    v |= static_cast<std::uint64_t>(in[byte] >> off) << got;
    got += 8 - off;
    ++byte;
    off = 0;
  }
  return bits < 64 ? v & (~std::uint64_t{0} >> (64 - bits)) : v;
}

[[nodiscard]] inline std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] inline std::int64_t zigzag_decode(std::uint64_t z) noexcept {
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

}  // namespace detail

/// Writes n values (pulled from next(), in order) as FoR blocks when
/// `packed`, plain varints otherwise.
template <typename NextFn>
void put_u64_array(sink& s, std::size_t n, bool packed, NextFn&& next) {
  std::uint64_t buf[kPackBlock];
  std::uint8_t bytes[kPackBlock * 8];
  std::size_t done = 0;
  while (done < n) {
    const std::size_t m = std::min(kPackBlock, n - done);
    for (std::size_t i = 0; i < m; ++i) buf[i] = next();
    if (!packed) {
      for (std::size_t i = 0; i < m; ++i) s.varint(buf[i]);
    } else {
      const auto [lo, hi] = std::minmax_element(buf, buf + m);
      const std::uint64_t base = *lo;
      const auto bits = static_cast<unsigned>(std::bit_width(*hi - base));
      for (std::size_t i = 0; i < m; ++i) buf[i] -= base;
      const std::size_t nbytes = (m * bits + 7) / 8;
      detail::pack_bits(buf, m, bits, bytes, nbytes);
      s.varint(base);
      s.u8(static_cast<std::uint8_t>(bits));
      s.bytes(std::span<const std::uint8_t>(bytes, nbytes));
    }
    done += m;
  }
}

/// Reads n values written by put_u64_array, passing each to put(v) in
/// order; false on truncation, bits > 64, a wrapping base + delta, or
/// put() rejecting a value.
template <typename PutFn>
[[nodiscard]] bool get_u64_array(source& s, std::size_t n, bool packed, PutFn&& put) {
  std::uint8_t bytes[kPackBlock * 8];
  std::size_t done = 0;
  while (done < n) {
    const std::size_t m = std::min(kPackBlock, n - done);
    if (!packed) {
      for (std::size_t i = 0; i < m; ++i) {
        std::uint64_t v = 0;
        if (!s.varint(v) || !put(v)) return false;
      }
    } else {
      std::uint64_t base = 0;
      std::uint8_t bits = 0;
      if (!s.varint(base) || !s.u8(bits) || bits > 64) return false;
      const std::size_t nbytes = (m * bits + 7) / 8;
      if (!s.read(bytes, nbytes)) return false;
      for (std::size_t i = 0; i < m; ++i) {
        const std::uint64_t d = bits == 0 ? 0 : detail::unpack_one(bytes, i * bits, bits);
        if (d > ~std::uint64_t{0} - base) return false;  // base + d wraps
        if (!put(base + d)) return false;
      }
    }
    done += m;
  }
  return true;
}

/// Strictly ascending sequences: delta-minus-one transform over
/// put_u64_array, so dense position arrays pack to a few bits per entry.
template <typename NextFn>
void put_ascending_u64(sink& s, std::size_t n, bool packed, NextFn&& next) {
  std::uint64_t prev = 0;
  bool first = true;
  put_u64_array(s, n, packed, [&] {
    const std::uint64_t v = next();
    const std::uint64_t d = first ? v : v - prev - 1;
    first = false;
    prev = v;
    return d;
  });
}

/// Inverse of put_ascending_u64; the reconstruction enforces strict ascent
/// (a wrapping prev + d + 1 is a decode failure), so consumers keep the
/// sortedness invariant even from forged bytes.
template <typename PutFn>
[[nodiscard]] bool get_ascending_u64(source& s, std::size_t n, bool packed, PutFn&& put) {
  std::uint64_t prev = 0;
  bool first = true;
  return get_u64_array(s, n, packed, [&](std::uint64_t d) {
    std::uint64_t v = 0;
    if (first) {
      first = false;
      v = d;
    } else {
      if (d >= ~std::uint64_t{0} - prev) return false;  // prev + d + 1 wraps
      v = prev + d + 1;
    }
    prev = v;
    return put(v);
  });
}

/// Counter-like columns: zig-zag varints of consecutive differences
/// (mod-2^64, so exact for any sequence; near-sorted input costs 1-2 bytes
/// per value).
template <typename NextFn>
void put_zigzag_u64(sink& s, std::size_t n, NextFn&& next) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = next();
    s.varint(detail::zigzag_encode(static_cast<std::int64_t>(v - prev)));
    prev = v;
  }
}

/// Inverse of put_zigzag_u64.
template <typename PutFn>
[[nodiscard]] bool get_zigzag_u64(source& s, std::size_t n, PutFn&& put) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t z = 0;
    if (!s.varint(z)) return false;
    const auto v = prev + static_cast<std::uint64_t>(detail::zigzag_decode(z));
    prev = v;
    if (!put(v)) return false;
  }
  return true;
}

}  // namespace memento::wire
