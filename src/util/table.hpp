// Console table formatting for the benchmark harness mains.
//
// Every figure-reproduction binary prints its series as an aligned text table
// (one row per data point) so EXPERIMENTS.md can quote the output verbatim.
// Kept deliberately tiny: fixed column widths, right-aligned numerics.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace memento {

class console_table {
 public:
  explicit console_table(std::vector<std::string> headers, int column_width = 14)
      : headers_(std::move(headers)), width_(column_width) {}

  /// Prints the header row followed by a rule.
  void print_header(std::ostream& os = std::cout) const {
    for (const auto& h : headers_) os << std::setw(width_) << h;
    os << '\n';
    os << std::string(headers_.size() * static_cast<std::size_t>(width_), '-') << '\n';
  }

  /// Appends one cell to the current row; call `end_row` to flush.
  template <typename T>
  console_table& cell(const T& value) {
    std::ostringstream ss;
    if constexpr (std::is_floating_point_v<T>) {
      ss << std::fixed << std::setprecision(4) << value;
    } else {
      ss << value;
    }
    row_.push_back(ss.str());
    return *this;
  }

  /// Floating-point cell with explicit precision.
  console_table& cell(double value, int precision) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value;
    row_.push_back(ss.str());
    return *this;
  }

  void end_row(std::ostream& os = std::cout) {
    for (const auto& c : row_) os << std::setw(width_) << c;
    os << '\n';
    row_.clear();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::string> row_;
  int width_;
};

}  // namespace memento
