// Runtime ISA dispatch and the SIMD kernels under the hot-path containers.
//
// Everything vectorized in this repository funnels through this header so
// that exactly one mechanism decides which instruction set runs:
//
//   * `detect()` probes the host once (SSE2 is the x86-64 baseline, AVX2 via
//     cpuid) and can be *clamped down* with the MEMENTO_ISA environment
//     variable (scalar|sse2|avx2) - the CI scalar-dispatch leg runs the full
//     differential suites with MEMENTO_ISA=scalar and zero rebuilds;
//   * `force()` / `scoped_tier` override the dispatch programmatically (never
//     above what the host supports) so differential tests can drive the SAME
//     binary through every kernel family and compare save() bytes;
//   * builds with -march=native / -mavx2 (MEMENTO_NATIVE) statically know
//     AVX2 is available and skip the cpuid, but still honor overrides - the
//     widest path is the default, not the only path.
//
// The kernels themselves are deliberately small and total:
//
//   * byte-group probing primitives (16-wide SSE2, 32-wide AVX2) for
//     flat_hash's SwissTable-style control array;
//   * contiguous-u64 scans (threshold visit, min+argmin, running suffix max)
//     for space_saving's counter vectors and the two-stacks window aggregate;
//   * prefix-mask kernels (variable-shift netmask + key packing) for the
//     hierarchical batch path: H-Memento materializes one sampled
//     generalization per packet, which is a data-parallel AND with a
//     per-level mask (prefix1d::mask_for_depth) - vectorized with sllv,
//     whose shift-past-width-yields-zero semantics encode the /0 root mask
//     for free.
//
// Every kernel has a scalar twin here with identical observable behavior
// (same visit order, same tie-breaks); the differential suites in
// tests/simd_test.cpp, tests/flat_hash_test.cpp and tests/batch_test.cpp pin
// the equivalence per dispatch tier, down to save() byte identity.
//
// AVX2 bodies carry __attribute__((target("avx2"))) so this header compiles
// - and the scalar/SSE2 tiers keep working - on baseline x86-64 builds; the
// attribute is dropped when the TU is already compiled with AVX2 enabled so
// the kernels can inline into MEMENTO_NATIVE builds.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <utility>

#if defined(__x86_64__) || defined(_M_X64)
#define MEMENTO_SIMD_X86 1
#include <immintrin.h>
#else
#define MEMENTO_SIMD_X86 0
#endif

#if MEMENTO_SIMD_X86 && !defined(__AVX2__)
#define MEMENTO_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define MEMENTO_TARGET_AVX2
#endif

namespace memento::simd {

/// Kernel families, widest last. A tier implies every tier below it, so
/// comparisons read naturally: `active() >= tier::sse2`.
enum class tier : int { scalar = 0, sse2 = 1, avx2 = 2 };

[[nodiscard]] constexpr const char* tier_name(tier t) noexcept {
  switch (t) {
    case tier::scalar: return "scalar";
    case tier::sse2: return "sse2";
    case tier::avx2: return "avx2";
  }
  return "scalar";
}

namespace detail {

inline std::atomic<int> g_detected{-1};  ///< lazily computed, idempotent
inline std::atomic<int> g_forced{-1};    ///< -1: no override

[[nodiscard]] inline tier detect_host() noexcept {
#if MEMENTO_SIMD_X86
#if defined(__AVX2__)
  tier host = tier::avx2;  // the build already requires it (MEMENTO_NATIVE)
#else
  tier host = __builtin_cpu_supports("avx2") ? tier::avx2 : tier::sse2;
#endif
#else
  tier host = tier::scalar;
#endif
  // MEMENTO_ISA clamps the detected tier DOWN (never up - running AVX2 code
  // on a host without it would fault). Unknown values are ignored.
  if (const char* env = std::getenv("MEMENTO_ISA")) {
    tier cap = host;
    if (std::strcmp(env, "scalar") == 0) cap = tier::scalar;
    if (std::strcmp(env, "sse2") == 0) cap = tier::sse2;
    if (std::strcmp(env, "avx2") == 0) cap = tier::avx2;
    if (cap < host) host = cap;
  }
  return host;
}

}  // namespace detail

/// Widest tier this host (and MEMENTO_ISA) allows. Computed once.
[[nodiscard]] inline tier detect() noexcept {
  int d = detail::g_detected.load(std::memory_order_relaxed);
  if (d < 0) {
    d = static_cast<int>(detail::detect_host());
    detail::g_detected.store(d, std::memory_order_relaxed);
  }
  return static_cast<tier>(d);
}

/// The tier hot paths dispatch on: the forced override if set, else detect().
[[nodiscard]] inline tier active() noexcept {
  const int f = detail::g_forced.load(std::memory_order_relaxed);
  return f >= 0 ? static_cast<tier>(f) : detect();
}

/// Forces dispatch to `t` (clamped to what the host supports). Test hook.
inline void force(tier t) noexcept {
  if (t > detect()) t = detect();
  detail::g_forced.store(static_cast<int>(t), std::memory_order_relaxed);
}

/// Removes the force() override; dispatch returns to detect().
inline void clear_force() noexcept {
  detail::g_forced.store(-1, std::memory_order_relaxed);
}

/// RAII dispatch override for differential tests: force a tier for one
/// scope, restore the previous override on exit.
class scoped_tier {
 public:
  explicit scoped_tier(tier t) noexcept
      : previous_(detail::g_forced.load(std::memory_order_relaxed)) {
    force(t);
  }
  ~scoped_tier() { detail::g_forced.store(previous_, std::memory_order_relaxed); }
  scoped_tier(const scoped_tier&) = delete;
  scoped_tier& operator=(const scoped_tier&) = delete;

 private:
  int previous_;
};

// --- byte-group probing ------------------------------------------------------
// flat_hash keeps a parallel 1-byte control array (7-bit H2 tag per used
// slot, kCtrlEmpty sentinel otherwise). A group is W consecutive control
// bytes loaded unaligned; match() returns a bitmask (bit j = byte j matches)
// so a probe inspects W slots with one load + compare + movemask. Bit order
// equals probe order, which is what keeps SIMD and scalar probes choosing
// identical slots.

/// Control byte for an unoccupied slot. H2 tags occupy [0, 0x80).
inline constexpr std::uint8_t kCtrlEmpty = 0x80;

#if MEMENTO_SIMD_X86

/// 16-byte control group (SSE2 - unconditionally available on x86-64).
struct group16 {
  static constexpr std::size_t width = 16;
  __m128i v;

  [[nodiscard]] static group16 load(const std::uint8_t* p) noexcept {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  [[nodiscard]] std::uint32_t match(std::uint8_t byte) const noexcept {
    const __m128i m = _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(byte)));
    return static_cast<std::uint32_t>(_mm_movemask_epi8(m));
  }
  [[nodiscard]] std::uint32_t match_empty() const noexcept { return match(kCtrlEmpty); }
};

#endif  // MEMENTO_SIMD_X86

// --- contiguous u64 scans ----------------------------------------------------
// The scalar bodies are the oracles; the AVX2 bodies must visit the same
// indices in the same order and break ties identically (first index wins).
// SSE2 lacks 64-bit compares, so the u64 scans have exactly two families:
// scalar (tiers scalar/sse2) and AVX2.

/// Visits fn(i) for every i < n with v[i] >= bar, in ascending order.
template <typename Fn>
void scan_ge_u64(const std::uint64_t* v, std::size_t n, std::uint64_t bar, Fn&& fn);

/// Minimum value and the FIRST index attaining it; n must be >= 1.
[[nodiscard]] inline std::pair<std::uint64_t, std::size_t> min_scan_u64(const std::uint64_t* v,
                                                                        std::size_t n);

/// Running suffix maximum: dst[i] = max(src[i], src[i+1], ..., src[n-1]).
/// src and dst must not alias. The two-stacks window aggregate's flip.
inline void suffix_max_u64(const std::uint64_t* src, std::uint64_t* dst, std::size_t n);

// --- prefix masking ----------------------------------------------------------
// The 1-D prefix encoding is (depth << 32) | (addr & mask_for_depth(depth))
// with mask_for_depth(d) = d >= 4 ? 0 : ~0u << 8d (prefix1d.hpp). Both
// kernels below compute the mask arithmetically as (~0 << 8d) so the root
// case needs no branch: a variable shift by >= the lane width yields zero
// under sllv, which IS the /0 mask. Depths must be <= 4 (byte-granularity
// generalizations); the scalar twins are the oracles.

/// out[i] = addrs[i] & mask_for_depth(depths[i]): one masked address per
/// lane. The 2-D lattice masks src and dst columns independently with this.
inline void mask_addr_by_depth(const std::uint32_t* addrs, const std::uint8_t* depths,
                               std::uint32_t* out, std::size_t n);

/// keys[i] = (depths[i] << 32) | (addrs[i] & mask_for_depth(depths[i])):
/// the full 1-D prefix key (prefix1d::make_key) materialized per lane.
inline void make_prefix_keys(const std::uint32_t* addrs, const std::uint8_t* depths,
                             std::uint64_t* keys, std::size_t n);

namespace detail {

template <typename Fn>
void scan_ge_u64_scalar(const std::uint64_t* v, std::size_t n, std::uint64_t bar, Fn&& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] >= bar) fn(i);
  }
}

[[nodiscard]] inline std::pair<std::uint64_t, std::size_t> min_scan_u64_scalar(
    const std::uint64_t* v, std::size_t n) {
  std::uint64_t best = v[0];
  std::size_t at = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i] < best) {
      best = v[i];
      at = i;
    }
  }
  return {best, at};
}

inline void suffix_max_u64_scalar(const std::uint64_t* src, std::uint64_t* dst, std::size_t n) {
  std::uint64_t running = 0;
  for (std::size_t i = n; i-- > 0;) {
    if (src[i] > running) running = src[i];
    dst[i] = running;
  }
}

/// mask_for_depth as branch-free arithmetic: (~0 << 8d) truncated to 32
/// bits, so d == 4 shifts the whole mask out. Matches prefix1d exactly.
[[nodiscard]] constexpr std::uint32_t depth_mask_scalar(std::uint8_t depth) noexcept {
  return static_cast<std::uint32_t>(~std::uint64_t{0} << (8u * depth));
}

inline void mask_addr_by_depth_scalar(const std::uint32_t* addrs, const std::uint8_t* depths,
                                      std::uint32_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = addrs[i] & depth_mask_scalar(depths[i]);
}

inline void make_prefix_keys_scalar(const std::uint32_t* addrs, const std::uint8_t* depths,
                                    std::uint64_t* keys, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = (static_cast<std::uint64_t>(depths[i]) << 32) |
              (addrs[i] & depth_mask_scalar(depths[i]));
  }
}

#if MEMENTO_SIMD_X86

/// Sign-bias for unsigned 64-bit comparison via the signed pcmpgtq.
inline constexpr std::int64_t kBias64 = static_cast<std::int64_t>(0x8000'0000'0000'0000ull);

/// 4-bit mask (bit = lane) of lanes where a >= bar, unsigned.
MEMENTO_TARGET_AVX2 [[nodiscard]] inline std::uint32_t ge_mask_epu64(__m256i a,
                                                                     __m256i bar_biased) noexcept {
  const __m256i ab = _mm256_xor_si256(a, _mm256_set1_epi64x(kBias64));
  // a >= bar  <=>  !(bar > a), signed on biased values.
  const __m256i lt = _mm256_cmpgt_epi64(bar_biased, ab);
  return static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(lt))) ^ 0xFu;
}

template <typename Fn>
MEMENTO_TARGET_AVX2 void scan_ge_u64_avx2(const std::uint64_t* v, std::size_t n,
                                          std::uint64_t bar, Fn&& fn) {
  const __m256i bar_biased =
      _mm256_set1_epi64x(static_cast<std::int64_t>(bar) ^ kBias64);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    std::uint32_t m = ge_mask_epu64(a, bar_biased);
    while (m) {
      fn(i + static_cast<std::size_t>(__builtin_ctz(m)));
      m &= m - 1;
    }
  }
  for (; i < n; ++i) {
    if (v[i] >= bar) fn(i);
  }
}

MEMENTO_TARGET_AVX2 [[nodiscard]] inline std::pair<std::uint64_t, std::size_t> min_scan_u64_avx2(
    const std::uint64_t* v, std::size_t n) {
  if (n < 8) return min_scan_u64_scalar(v, n);
  const __m256i bias = _mm256_set1_epi64x(kBias64);
  __m256i best = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v));
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i lt = _mm256_cmpgt_epi64(_mm256_xor_si256(best, bias),
                                          _mm256_xor_si256(a, bias));
    best = _mm256_blendv_epi8(best, a, lt);
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
  std::uint64_t m = lanes[0];
  for (int l = 1; l < 4; ++l) {
    if (lanes[l] < m) m = lanes[l];
  }
  for (; i < n; ++i) {
    if (v[i] < m) m = v[i];
  }
  // Second pass: FIRST index holding the minimum (the scalar tie-break).
  const __m256i mv = _mm256_set1_epi64x(static_cast<std::int64_t>(m));
  for (std::size_t j = 0; j + 4 <= n; j += 4) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + j));
    const std::uint32_t eq = static_cast<std::uint32_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(a, mv))));
    if (eq) return {m, j + static_cast<std::size_t>(__builtin_ctz(eq))};
  }
  for (std::size_t j = n & ~std::size_t{3}; j < n; ++j) {
    if (v[j] == m) return {m, j};
  }
  return {m, n};  // unreachable: m was observed in v
}

MEMENTO_TARGET_AVX2 [[nodiscard]] inline __m256i max_epu64_avx2(__m256i a, __m256i b) noexcept {
  const __m256i bias = _mm256_set1_epi64x(kBias64);
  const __m256i gt =
      _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias), _mm256_xor_si256(b, bias));
  return _mm256_blendv_epi8(b, a, gt);
}

MEMENTO_TARGET_AVX2 inline void suffix_max_u64_avx2(const std::uint64_t* src, std::uint64_t* dst,
                                                    std::size_t n) {
  // Tail (n % 4) first, right to left, establishing the carry.
  std::uint64_t carry = 0;
  std::size_t i = n;
  while (i & 3) {
    --i;
    if (src[i] > carry) carry = src[i];
    dst[i] = carry;
  }
  // Whole blocks of 4, right to left. In-register suffix max via two
  // lane-shift + max steps (identity 0 fills vacated lanes), then fold in
  // the carry from everything to the right of the block.
  const __m256i zero = _mm256_setzero_si256();
  while (i) {
    i -= 4;
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // step 1: lane j gains lane j+1 (lane 3 gains identity).
    __m256i s1 = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(3, 3, 2, 1));
    s1 = _mm256_blend_epi32(s1, zero, 0b11000000);
    __m256i m = max_epu64_avx2(x, s1);
    // step 2: lane j gains lanes j+2.. (lanes 2,3 gain identity).
    __m256i s2 = _mm256_permute4x64_epi64(m, _MM_SHUFFLE(3, 3, 3, 2));
    s2 = _mm256_blend_epi32(s2, zero, 0b11110000);
    m = max_epu64_avx2(m, s2);
    m = max_epu64_avx2(m, _mm256_set1_epi64x(static_cast<std::int64_t>(carry)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), m);
    carry = dst[i];
  }
}

MEMENTO_TARGET_AVX2 inline void mask_addr_by_depth_avx2(const std::uint32_t* addrs,
                                                        const std::uint8_t* depths,
                                                        std::uint32_t* out, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i addr = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(addrs + i));
    const __m128i d8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(depths + i));
    const __m256i shift = _mm256_slli_epi32(_mm256_cvtepu8_epi32(d8), 3);  // 8 * depth
    // sllv: a shift count >= 32 produces 0, which is exactly the /0 mask.
    const __m256i mask = _mm256_sllv_epi32(_mm256_set1_epi32(-1), shift);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), _mm256_and_si256(addr, mask));
  }
  mask_addr_by_depth_scalar(addrs + i, depths + i, out + i, n - i);
}

MEMENTO_TARGET_AVX2 inline void make_prefix_keys_avx2(const std::uint32_t* addrs,
                                                      const std::uint8_t* depths,
                                                      std::uint64_t* keys, std::size_t n) {
  const __m256i lo32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i addr =
        _mm256_cvtepu32_epi64(_mm_loadu_si128(reinterpret_cast<const __m128i*>(addrs + i)));
    std::uint32_t d4 = 0;
    std::memcpy(&d4, depths + i, 4);
    const __m256i dep = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(d4)));
    const __m256i shift = _mm256_slli_epi64(dep, 3);  // 8 * depth, in [0, 32]
    // (0xFFFFFFFF << 8d) & 0xFFFFFFFF == mask_for_depth(d) for d in [0, 4].
    const __m256i mask = _mm256_and_si256(_mm256_sllv_epi64(lo32, shift), lo32);
    const __m256i key =
        _mm256_or_si256(_mm256_slli_epi64(dep, 32), _mm256_and_si256(addr, mask));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i), key);
  }
  make_prefix_keys_scalar(addrs + i, depths + i, keys + i, n - i);
}

#endif  // MEMENTO_SIMD_X86

}  // namespace detail

template <typename Fn>
void scan_ge_u64(const std::uint64_t* v, std::size_t n, std::uint64_t bar, Fn&& fn) {
#if MEMENTO_SIMD_X86
  if (active() >= tier::avx2 && n >= 4) {
    detail::scan_ge_u64_avx2(v, n, bar, std::forward<Fn>(fn));
    return;
  }
#endif
  detail::scan_ge_u64_scalar(v, n, bar, std::forward<Fn>(fn));
}

[[nodiscard]] inline std::pair<std::uint64_t, std::size_t> min_scan_u64(const std::uint64_t* v,
                                                                        std::size_t n) {
#if MEMENTO_SIMD_X86
  if (active() >= tier::avx2) return detail::min_scan_u64_avx2(v, n);
#endif
  return detail::min_scan_u64_scalar(v, n);
}

inline void suffix_max_u64(const std::uint64_t* src, std::uint64_t* dst, std::size_t n) {
#if MEMENTO_SIMD_X86
  if (active() >= tier::avx2 && n >= 4) {
    detail::suffix_max_u64_avx2(src, dst, n);
    return;
  }
#endif
  detail::suffix_max_u64_scalar(src, dst, n);
}

inline void mask_addr_by_depth(const std::uint32_t* addrs, const std::uint8_t* depths,
                               std::uint32_t* out, std::size_t n) {
#if MEMENTO_SIMD_X86
  if (active() >= tier::avx2 && n >= 8) {
    detail::mask_addr_by_depth_avx2(addrs, depths, out, n);
    return;
  }
#endif
  detail::mask_addr_by_depth_scalar(addrs, depths, out, n);
}

inline void make_prefix_keys(const std::uint32_t* addrs, const std::uint8_t* depths,
                             std::uint64_t* keys, std::size_t n) {
#if MEMENTO_SIMD_X86
  if (active() >= tier::avx2 && n >= 4) {
    detail::make_prefix_keys_avx2(addrs, depths, keys, n);
    return;
  }
#endif
  detail::make_prefix_keys_scalar(addrs, depths, keys, n);
}

}  // namespace memento::simd
