// Idle-progressive backoff shared by every busy-poll loop in the repository
// (the shard pool workers, the pipeline core loops, and the producers' full-
// ring waits).
//
// A run-to-completion worker alternates between two regimes: hot (a burst is
// usually waiting, and any sleep costs a ring's worth of latency) and idle
// (the producer paused, and spinning burns a whole core per shard - exactly
// what a minutes-long soak cannot afford). The ladder escalates with
// consecutive empty polls and resets to the bottom on any progress:
//
//   stage 0  (idle < 16)   tight spin        - producer is mid-burst;
//   stage 1  (idle < 64)   cpu_relax()       - PAUSE/YIELD hint: stay
//                          runnable, stop speculating, free the hyper-twin;
//   stage 2  (idle < 128)  std::this_thread::yield() - give the scheduler a
//                          chance when threads exceed cores;
//   stage 3  (idle >= 128) exponential sleep capped at 128us - an idle shard
//                          costs ~0 CPU, yet wakes within a ring-fill's time.
//
// The cap keeps the worst-case wakeup latency two orders of magnitude below
// a soak's measurement granularity while dropping idle CPU to noise; the
// pool's drain() latency satellite (ISSUE 6) is pinned by the shard tests.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

namespace memento {

/// One CPU "relax" hint: x86 PAUSE / arm YIELD, a no-op elsewhere. Keeps the
/// thread runnable (unlike yield()) but backs the core off speculative spin.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Escalating wait ladder. Call idle() on every empty poll and reset() on
/// any progress; the object is cheap enough to live on a worker's stack.
class idle_backoff {
 public:
  /// One empty poll: wait according to the current stage, then escalate.
  void idle() noexcept {
    const std::uint32_t n = count_ < kSaturate ? count_++ : count_;
    if (n < kSpin) {
      // tight spin: the next burst is usually already in flight
    } else if (n < kRelax) {
      cpu_relax();
    } else if (n < kYield) {
      std::this_thread::yield();
    } else {
      const std::uint32_t exp = n - kYield < kMaxExp ? n - kYield : kMaxExp;
      std::this_thread::sleep_for(std::chrono::microseconds(1u << exp));  // caps at 128us
    }
  }

  /// Progress was made: drop back to the tight-spin stage.
  void reset() noexcept { count_ = 0; }

  /// Consecutive empty polls since the last reset (saturating; for tests).
  [[nodiscard]] std::uint32_t idle_polls() const noexcept { return count_; }

  /// True once the ladder has escalated past the spin/relax stages, i.e.
  /// the thread has started ceding the core (yield or sleep).
  [[nodiscard]] bool parked() const noexcept { return count_ >= kYield; }

 private:
  static constexpr std::uint32_t kSpin = 16;
  static constexpr std::uint32_t kRelax = 64;
  static constexpr std::uint32_t kYield = 128;
  static constexpr std::uint32_t kMaxExp = 7;  ///< 2^7 us = 128us sleep cap
  static constexpr std::uint32_t kSaturate = kYield + kMaxExp;

  std::uint32_t count_ = 0;
};

}  // namespace memento
