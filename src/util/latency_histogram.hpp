// Fixed-memory log-bucketed latency histogram for the soak benches and the
// pipeline's per-burst latency accounting.
//
// Recording a tail percentile over a minutes-long soak cannot keep every
// sample (billions of bursts) and cannot sort online; the standard answer
// (HdrHistogram-style) is logarithmic bucketing with linear sub-buckets:
//
//   * values below 16 get their own exact bucket;
//   * every larger value lands in bucket (msb, top-4-bits-below-msb), i.e.
//     16 linear sub-buckets per power of two, bounding the relative
//     quantization error by 1/16 = 6.25% - far below run-to-run soak noise;
//   * the whole table is 976 u64 counters (~7.6 KiB), allocation-free after
//     construction, O(1) record, O(buckets) query.
//
// Histograms are mergeable (bucket-wise sum), so each pipeline core records
// into its own instance with no synchronization and the appliance merges
// after the join - the same per-core-then-merge discipline as the sketches.
// min/max/sum ride along exactly, so mean and true extremes are not
// quantized. percentile() returns the lower bound of the target bucket
// (clamped to the exact observed [min, max]), making reported p50/p99/p99.9
// deterministic for a given sample multiset.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace memento {

class latency_histogram {
 public:
  /// Index granularity: 16 exact unit buckets, then 16 linear sub-buckets
  /// per power of two up to 2^63 -> (64 - 4) * 16 + 16 = 976 buckets total.
  static constexpr std::size_t kSubBits = 4;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;  // 16
  static constexpr std::size_t kBuckets = (64 - kSubBits) * kSubBuckets + kSubBuckets;

  /// Records one value (nanoseconds by convention; any u64 works). O(1).
  void record(std::uint64_t value) noexcept {
    counts_[bucket_of(value)] += 1;
    ++count_;
    sum_ += value;
    min_ = count_ == 1 ? value : std::min(min_, value);
    max_ = std::max(max_, value);
  }

  /// Bucket-wise merge: the merged histogram answers exactly as if every
  /// sample of `other` had been recorded here.
  void merge(const latency_histogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    if (other.count_ == 0) return;
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
  }

  /// The smallest recorded value v such that at least p * count() samples
  /// are <= v's bucket (p in [0, 1]). Returns the target bucket's lower
  /// bound clamped into the exact [min, max] observed, so percentile(0) ==
  /// min() and percentile(1) == max(). 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept {
    if (count_ == 0) return 0;
    const double clamped = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
    // ceil(p * count), floored at 1: the rank of the target sample.
    auto rank = static_cast<std::uint64_t>(clamped * static_cast<double>(count_));
    if (static_cast<double>(rank) < clamped * static_cast<double>(count_)) ++rank;
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) {
        // Rank landed in the highest occupied bucket: report the exact
        // maximum, so tail percentiles never under-read the worst sample
        // (and percentile(1) == max() holds exactly, as documented).
        if (seen == count_) return max_;
        return std::clamp(bucket_floor(i), min_, max_);
      }
    }
    return max_;  // unreachable when counts are consistent
  }

  [[nodiscard]] std::uint64_t p50() const noexcept { return percentile(0.50); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return percentile(0.99); }
  [[nodiscard]] std::uint64_t p999() const noexcept { return percentile(0.999); }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  void clear() noexcept { *this = latency_histogram{}; }

  /// The bucket a value lands in - exposed for the unit tests that pin the
  /// quantization contract (exact below 16, <= 1/16 relative error above).
  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const auto msb = static_cast<std::size_t>(63 - std::countl_zero(v));
    const auto sub = static_cast<std::size_t>((v >> (msb - kSubBits)) & (kSubBuckets - 1));
    return (msb - (kSubBits - 1)) * kSubBuckets + sub;
  }

  /// Smallest value mapping to bucket i (the reported representative).
  [[nodiscard]] static constexpr std::uint64_t bucket_floor(std::size_t i) noexcept {
    if (i < kSubBuckets) return static_cast<std::uint64_t>(i);
    const std::size_t msb = i / kSubBuckets + (kSubBits - 1);
    const std::uint64_t sub = i % kSubBuckets;
    return (std::uint64_t{1} << msb) | (sub << (msb - kSubBits));
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace memento
