// Standard-normal distribution helpers.
//
// The Memento analysis (Theorems 5.2, 5.3, 5.5) expresses every accuracy
// guarantee through Z_alpha, the alpha-quantile of the standard normal
// distribution ("Z is the inverse CDF of the normal distribution", Table 1).
// The batch-size optimizer and the H-Memento conditioned-frequency
// compensation term (Algorithm 2, line 8) both evaluate it at runtime, so we
// implement the inverse CDF from scratch (no external math libraries).
#pragma once

namespace memento {

/// CDF of the standard normal distribution, Phi(x).
/// Implemented via std::erfc for full double precision.
[[nodiscard]] double normal_cdf(double x) noexcept;

/// Inverse CDF (quantile) of the standard normal distribution: returns z such
/// that Phi(z) = p, for p in (0, 1).
///
/// Uses Peter Acklam's rational approximation (relative error < 1.15e-9)
/// refined by one step of Halley's method against `normal_cdf`, giving
/// near-machine precision across the whole domain - including the extreme
/// tails the paper's delta = 1e-6 configurations reach.
///
/// Out-of-domain p returns +/-infinity (p >= 1 / p <= 0 respectively).
[[nodiscard]] double normal_quantile(double p) noexcept;

/// The paper's Z_{1-delta} shorthand: the (1-delta)-quantile.
/// Section 5.1 notes Z_{1-delta/4} < 4 for any delta > 1e-6; asserted in tests.
[[nodiscard]] double z_value(double one_minus_delta) noexcept;

}  // namespace memento
