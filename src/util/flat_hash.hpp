// Flat open-addressing hash map for the packet-processing hot path.
//
// std::unordered_map costs the sketch stack one node allocation per insert
// and one deallocation per erase - and Space-Saving's eviction path (the
// common case on heavy-tailed traces, where most packets miss the counter
// set) pays both, plus pointer-chasing on every find. This map removes all
// of that: one flat power-of-two slot array, linear probing, and
// tombstone-free deletion by backward shifting (Knuth TAOCP 6.4 Algorithm R),
// so a long-running sketch never degrades from accumulated tombstones and
// never allocates after reserve().
//
// SwissTable-style group probing: alongside the slots lives a 1-byte control
// array - the top 7 hash bits (H2) for a used slot, a sentinel for an empty
// one - padded with a wraparound mirror so a probe can inspect 16 (SSE2) or
// 32 (AVX2) consecutive slots with one unaligned load + compare + movemask
// (util/simd.hpp picks the tier at runtime; MEMENTO_ISA / simd::force clamp
// it). The group walk visits slots in exactly linear-probe order and stops at
// the first empty byte, so every dispatch tier finds the same entry, inserts
// into the same slot, and serializes to the same bytes - the scalar probe
// (which prefilters on the same control byte) is retained as the
// differential oracle, pinned by tests/flat_hash_test.cpp.
//
// Values are small (32-bit counter indices / overflow counts across the
// stack), so slots stay 16 bytes for 64-bit keys - four per cache line - and
// the control array for a full-size counter index is ~2 KB, i.e. L1-resident
// while the slot array is not.
//
// Used by space_saving::index_ and memento_sketch::overflows_, and through
// them by WCSS, H-Memento, MST and RHHH. References into the table are
// invalidated by rehash (growth only - erase never moves the table).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "util/compress.hpp"
#include "util/random.hpp"
#include "util/simd.hpp"
#include "util/wire.hpp"

namespace memento {

/// Probe-behavior introspection (flat_hash::stats): how the table actually
/// probes, so SIMD-vs-scalar behavior is observable, not inferred. Probe
/// distance of an entry = slots walked past its home bucket (0 = sits at
/// home); a lookup touches distance+1 slots.
struct flat_hash_stats {
  std::size_t size = 0;
  std::size_t capacity = 0;
  std::size_t max_probe = 0;    ///< worst entry's probe distance
  double mean_probe = 0.0;      ///< average probe distance over entries
  double load_factor = 0.0;     ///< size / capacity (0 for an empty table)
};

template <typename Key, typename Value = std::uint32_t, typename Hash = std::hash<Key>>
class flat_hash {
 public:
  flat_hash() = default;

  /// Pre-sizes the table for `expected` entries without exceeding the
  /// maximum load factor (3/4).
  explicit flat_hash(std::size_t expected) { reserve(expected); }

  /// Grows the table (never shrinks) so `expected` entries fit at load <= 3/4.
  void reserve(std::size_t expected) {
    std::size_t cap = kMinCapacity;
    while (cap - cap / 4 < expected) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  /// Pointer to x's value, or nullptr when absent. Stable until the next
  /// rehashing insert.
  [[nodiscard]] Value* find(const Key& x) noexcept {
    if (slots_.empty()) return nullptr;
    const std::size_t i = find_index(token_of(x), x);
    return i == knpos ? nullptr : &slots_[i].value;
  }

  [[nodiscard]] const Value* find(const Key& x) const noexcept {
    return const_cast<flat_hash*>(this)->find(x);
  }

  [[nodiscard]] bool contains(const Key& x) const noexcept { return find(x) != nullptr; }

  /// Inserts {x, v}; x must not already be present (the sketches always
  /// find() first, so the full probe is only repeated in debug builds).
  void emplace(const Key& x, Value v) {
    grow_if_needed();
    const std::uint64_t token = token_of(x);
    assert(find_index(token, x) == knpos && "flat_hash::emplace: key already present");
    place(first_empty(token), token, x, v);
  }

  /// Value of x, inserting `init` first when absent (the `++map[x]` idiom).
  /// Probes before growing, so a hit never rehashes (and never invalidates
  /// outstanding find() pointers).
  [[nodiscard]] Value& find_or_emplace(const Key& x, Value init) {
    if (slots_.empty()) rehash(kMinCapacity);
    const std::uint64_t token = token_of(x);
    const std::size_t hit = find_index(token, x);
    if (hit != knpos) return slots_[hit].value;
    if (size_ + 1 > slots_.size() - slots_.size() / 4) rehash(slots_.size() * 2);
    const std::size_t i = first_empty(token);
    place(i, token, x, init);
    return slots_[i].value;
  }

  /// Removes x (returns false when absent) by backward shift: every entry in
  /// the probe chain after the hole moves up unless it already sits at or
  /// past its home bucket, so lookups never need tombstones.
  bool erase(const Key& x) {
    if (slots_.empty()) return false;
    const std::size_t pos = find_index(token_of(x), x);
    if (pos == knpos) return false;
    erase_slot(pos, [](Value, std::size_t) {});
    return true;
  }

  /// erase() by slot position (as returned by emplace_prehashed), skipping
  /// the probe entirely - Space-Saving's eviction path keeps each monitored
  /// key's slot on its counter. The backward shift relocates other entries,
  /// so on_move(value, new_pos) fires for each one, letting the caller
  /// maintain those back-references.
  template <typename MoveFn>
  void erase_at(std::size_t pos, MoveFn&& on_move) {
    assert(pos < slots_.size() && is_used(pos));
    erase_slot(pos, std::forward<MoveFn>(on_move));
  }

  /// Drops all entries; capacity is retained (flush() happens every frame).
  void clear() noexcept {
    for (auto& s : slots_) s = slot{};
    if (!ctrl_.empty()) std::fill(ctrl_.begin(), ctrl_.end(), simd::kCtrlEmpty);
    size_ = 0;
  }

  /// Invokes fn(key, value) for every entry. Iteration order is the slot
  /// order - deterministic for a given operation history.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (is_used(i)) fn(slots_[i].key, slots_[i].value);
    }
  }

  /// Hints the cache about x's home slot; pairs with update_batch's
  /// decision lookahead so the probe's first lines - the control byte read
  /// first by every lookup, then the slot itself - are resident on arrival.
  void prefetch(const Key& x) const noexcept {
    if (slots_.empty()) return;
    const std::size_t i = token_of(x) & mask_;
    __builtin_prefetch(ctrl_.data() + i);
    __builtin_prefetch(&slots_[i]);
  }

  // --- prehashed hot-path entry points -------------------------------------
  // Batched callers hash a whole chunk of keys up front (a vectorizable pure
  // loop) and replay the probes later with the finished hash - the probe
  // token - already in hand. The token carries the full mixed hash (home
  // bucket in the low bits, the SIMD control tag in the high bits), so it
  // stays valid however the probe is dispatched. Like before, prehashed
  // mutation is restricted to pre-reserved tables that never grow
  // (asserted): growth would relocate entries under outstanding slot
  // positions returned by emplace_prehashed.

  /// Probe token of x; the table must be non-empty (reserve() first).
  [[nodiscard]] std::size_t bucket(const Key& x) const noexcept {
    assert(!slots_.empty() && "flat_hash::bucket: reserve() before prehashing");
    return token_of(x);
  }

  /// find(x), probing from a bucket() token computed earlier.
  [[nodiscard]] Value* find_prehashed(std::size_t bucket, const Key& x) noexcept {
    assert(!slots_.empty() && bucket == token_of(x));
    const std::size_t i = find_index(bucket, x);
    return i == knpos ? nullptr : &slots_[i].value;
  }

  /// emplace(x, v) from a bucket() token; the table must have spare reserved
  /// capacity (growth would invalidate every outstanding slot position).
  /// Returns the slot position x landed in (stable until a rehash or until a
  /// backward-shift erase relocates it - see erase_at's on_move).
  std::size_t emplace_prehashed(std::size_t bucket, const Key& x, Value v) {
    assert(!slots_.empty() && bucket == token_of(x));
    assert(size_ + 1 <= slots_.size() - slots_.size() / 4 &&
           "flat_hash::emplace_prehashed: table would need to grow");
    assert(find_index(bucket, x) == knpos && "flat_hash::emplace_prehashed: key already present");
    const std::size_t i = first_empty(bucket);
    place(i, bucket, x, v);
    return i;
  }

  /// Prefetches a home slot (control byte + slot) by bucket() token.
  void prefetch_bucket(std::size_t bucket) const noexcept {
    const std::size_t i = bucket & mask_;
    __builtin_prefetch(ctrl_.data() + i);
    __builtin_prefetch(&slots_[i]);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Slot-array size (a power of two; 0 before the first insert/reserve).
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Probe-length / occupancy introspection: max and mean probe distance
  /// over the live entries plus the load factor. O(capacity); a monitoring
  /// call, not a hot-path one.
  [[nodiscard]] flat_hash_stats stats() const {
    flat_hash_stats st;
    st.size = size_;
    st.capacity = slots_.size();
    if (slots_.empty()) return st;
    st.load_factor = static_cast<double>(size_) / static_cast<double>(slots_.size());
    std::size_t total = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!is_used(i)) continue;
      const std::size_t dist = (i - (token_of(slots_[i].key) & mask_)) & mask_;
      total += dist;
      if (dist > st.max_probe) st.max_probe = dist;
    }
    if (size_ > 0) st.mean_probe = static_cast<double>(total) / static_cast<double>(size_);
    return st;
  }

  // --- snapshot support ------------------------------------------------------
  // The table is serialized by EXACT slot layout, not as a key/value bag:
  // slot positions feed back into behavior (Space-Saving keeps islot
  // back-references; for_each order is slot order, and through it candidate
  // iteration order), so a restored table must probe, iterate and relocate
  // exactly like the original - the bit-identical-continuation guarantee of
  // the snapshot layer rests on it. The control array is derived state
  // (rebuilt from the keys), so the wire format is unchanged from the
  // scalar-probe era and snapshots cross dispatch tiers freely.

  /// Invokes fn(slot_pos, key, value) for every entry in slot order. Used by
  /// restore-side cross-checks (e.g. Space-Saving's islot validation).
  template <typename Fn>
  void for_each_slot(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (is_used(i)) fn(i, slots_[i].key, slots_[i].value);
    }
  }

  /// Serializes capacity + the used slots (ascending position).
  void save(wire::writer& w) const {
    w.varint(slots_.size());
    w.varint(size_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!is_used(i)) continue;
      w.varint(i);
      wire::codec<Key>::put(w, slots_[i].key);
      w.varint(static_cast<std::uint64_t>(slots_[i].value));
    }
  }

  /// Rebuilds the exact layout from save() output. Returns false - leaving
  /// the table empty - on ANY structural violation: capacity not a power of
  /// two (or absurd), overload, positions out of range or non-ascending, or
  /// an entry that a probe from its home bucket would not reach (which
  /// would make it silently unfindable). Malformed bytes can never produce
  /// a table that crashes later.
  [[nodiscard]] bool restore(wire::reader& r) {
    slots_.clear();
    ctrl_.clear();
    mask_ = 0;
    size_ = 0;
    std::uint64_t cap = 0, count = 0;
    if (!r.varint(cap) || !r.varint(count)) return false;
    if (cap == 0) return count == 0;
    if (cap < kMinCapacity || cap > kMaxRestoreCapacity || (cap & (cap - 1)) != 0) return false;
    if (count > cap - cap / 4) return false;
    // An honest save of `count` entries occupies at least 10 bytes each
    // (pos + 8-byte key + value); reject lying counts before allocating.
    if (count * 10 > r.remaining()) return false;
    slots_.assign(static_cast<std::size_t>(cap), slot{});
    ctrl_.assign(static_cast<std::size_t>(cap) + kCtrlPad, simd::kCtrlEmpty);
    mask_ = static_cast<std::size_t>(cap) - 1;
    std::uint64_t prev_pos = 0;
    for (std::uint64_t n = 0; n < count; ++n) {
      std::uint64_t pos = 0, value = 0;
      Key key{};
      if (!r.varint(pos) || !wire::codec<Key>::get(r, key) || !r.varint(value)) return false;
      if (pos >= cap || (n > 0 && pos <= prev_pos)) return false;
      if (value > std::numeric_limits<Value>::max()) return false;
      prev_pos = pos;
      place(static_cast<std::size_t>(pos), token_of(key), key, static_cast<Value>(value));
    }
    return probe_layout_valid();
  }

  /// Streamed, optionally compressed counterpart of save(): same capacity +
  /// size preamble, then the used slots in tiles of up to wire::kPackBlock
  /// entries - per tile an ascending-delta position column, a FoR key
  /// column, and a FoR value column. Tiling (rather than three whole-table
  /// columns) is what keeps the RESTORE side bounded too: it rebuilds from
  /// one tile of scratch, never a table-sized temporary. Inline like save()
  /// - the enclosing section's codec flags decide `packed`.
  void save_stream(wire::sink& s, bool packed) const {
    s.varint(slots_.size());
    s.varint(size_);
    std::uint64_t pos[wire::kPackBlock];
    std::size_t scan = 0;
    std::size_t left = size_;
    while (left > 0) {
      const std::size_t m = std::min(wire::kPackBlock, left);
      for (std::size_t i = 0; i < m; ++scan) {
        if (is_used(scan)) pos[i++] = scan;
      }
      std::size_t i = 0;
      wire::put_ascending_u64(s, m, packed, [&] { return pos[i++]; });
      i = 0;
      wire::put_u64_array(s, m, packed,
                          [&] { return wire::codec<Key>::to_u64(slots_[pos[i++]].key); });
      i = 0;
      wire::put_u64_array(s, m, packed, [&] {
        return static_cast<std::uint64_t>(slots_[pos[i++]].value);
      });
      left -= m;
    }
  }

  /// Rebuilds the exact layout from save_stream() output, with the same
  /// validation contract as restore(): false on any structural violation,
  /// leaving the table empty. Positions must ascend strictly across tiles,
  /// not just within them.
  [[nodiscard]] bool restore_stream(wire::source& s, bool packed) {
    slots_.clear();
    ctrl_.clear();
    mask_ = 0;
    size_ = 0;
    std::uint64_t cap = 0, count = 0;
    if (!s.varint(cap) || !s.varint(count)) return false;
    if (cap == 0) return count == 0;
    if (cap < kMinCapacity || cap > kMaxRestoreCapacity || (cap & (cap - 1)) != 0) return false;
    if (count > cap - cap / 4) return false;
    slots_.assign(static_cast<std::size_t>(cap), slot{});
    ctrl_.assign(static_cast<std::size_t>(cap) + kCtrlPad, simd::kCtrlEmpty);
    mask_ = static_cast<std::size_t>(cap) - 1;
    std::uint64_t pos[wire::kPackBlock];
    std::uint64_t keys[wire::kPackBlock];
    std::uint64_t prev_pos = 0;
    bool any = false;
    std::uint64_t left = count;
    while (left > 0) {
      const std::size_t m = std::min<std::uint64_t>(wire::kPackBlock, left);
      std::size_t i = 0;
      const bool pos_ok = wire::get_ascending_u64(s, m, packed, [&](std::uint64_t p) {
        if (p >= cap || (any && p <= prev_pos)) return false;
        prev_pos = p;
        any = true;
        pos[i++] = p;
        return true;
      });
      if (!pos_ok) {
        clear();
        return false;
      }
      i = 0;
      if (!wire::get_u64_array(s, m, packed, [&](std::uint64_t raw) {
            keys[i++] = raw;
            return true;
          })) {
        clear();
        return false;
      }
      i = 0;
      const bool values_ok = wire::get_u64_array(s, m, packed, [&](std::uint64_t raw) {
        if (raw > std::numeric_limits<Value>::max()) return false;
        Key key{};
        if (!wire::codec<Key>::from_u64(keys[i], key)) return false;
        place(static_cast<std::size_t>(pos[i]), token_of(key), key, static_cast<Value>(raw));
        ++i;
        return true;
      });
      if (!values_ok) {
        clear();
        return false;
      }
      left -= m;
    }
    return probe_layout_valid();
  }

  /// Rebuilds the exact layout from externally held (position, key, value)
  /// triples, for owners that already persist every entry's slot position
  /// next to the entry itself (space_saving's islot column) and so need not
  /// ship this table's contents a second time. `next_entry(n, pos, key,
  /// value)` fills the n-th triple; entries arrive in the owner's order, not
  /// necessarily by position - duplicates are caught by the occupancy map.
  /// Same contract as restore(): false on any structural violation, leaving
  /// the table empty.
  template <typename EmitFn>
  [[nodiscard]] bool rebuild_placed(std::uint64_t cap, std::uint64_t count, EmitFn&& next_entry) {
    slots_.clear();
    ctrl_.clear();
    mask_ = 0;
    size_ = 0;
    if (cap == 0) return count == 0;
    if (cap < kMinCapacity || cap > kMaxRestoreCapacity || (cap & (cap - 1)) != 0) return false;
    if (count > cap - cap / 4) return false;
    slots_.assign(static_cast<std::size_t>(cap), slot{});
    ctrl_.assign(static_cast<std::size_t>(cap) + kCtrlPad, simd::kCtrlEmpty);
    mask_ = static_cast<std::size_t>(cap) - 1;
    for (std::uint64_t n = 0; n < count; ++n) {
      std::uint64_t pos = 0, value = 0;
      Key key{};
      next_entry(n, pos, key, value);
      if (pos >= cap || is_used(static_cast<std::size_t>(pos)) ||
          value > std::numeric_limits<Value>::max()) {
        clear();
        return false;
      }
      place(static_cast<std::size_t>(pos), token_of(key), key, static_cast<Value>(value));
    }
    return probe_layout_valid();
  }

 private:
  /// Probe-reachability check shared by both restore paths: every entry must
  /// be findable by walking from its home bucket through used slots.
  /// Rejecting (and clearing) here keeps find()'s "empty slot terminates the
  /// probe" invariant true for restored tables - malformed bytes can never
  /// produce a table with silently unfindable entries.
  [[nodiscard]] bool probe_layout_valid() {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!is_used(i)) continue;
      std::size_t walk = token_of(slots_[i].key) & mask_;
      std::size_t steps = 0;
      while (walk != i) {
        if (!is_used(walk) || ++steps > size_) {
          clear();
          return false;
        }
        walk = next(walk);
      }
    }
    return true;
  }

  static constexpr std::size_t kMinCapacity = 8;
  /// Restore-side allocation guard: real sketch tables run thousands of
  /// slots, so anything near this in a snapshot is garbage, not data. The
  /// cap also bounds the transient allocation a malicious tiny payload can
  /// trigger before rejection (~50 MB of slots at 2^21).
  static constexpr std::size_t kMaxRestoreCapacity = std::size_t{1} << 21;
  /// Wraparound mirror after the control array: a group load starting at the
  /// last slot still reads (widest group - 1) = 31 in-bounds bytes. The
  /// mirror replicates the array's head, so group probes need no bounds
  /// logic; set_ctrl keeps it coherent.
  static constexpr std::size_t kCtrlPad = 31;
  static constexpr std::size_t knpos = std::numeric_limits<std::size_t>::max();

  struct slot {
    Key key{};
    Value value{};
  };

  /// mix64 finalizer on top of Hash: the probe token. Low bits (masked)
  /// select the home bucket; the top 7 bits are the control tag - disjoint
  /// bit ranges for any realistic capacity, so the tag adds entropy the
  /// bucket does not already spend.
  [[nodiscard]] std::uint64_t token_of(const Key& x) const noexcept {
    return mix64(static_cast<std::uint64_t>(Hash{}(x)));
  }

  /// Control tag of a token: top 7 bits, always in [0, 0x80) - never the
  /// empty sentinel.
  [[nodiscard]] static std::uint8_t h2(std::uint64_t token) noexcept {
    return static_cast<std::uint8_t>(token >> 57);
  }

  [[nodiscard]] bool is_used(std::size_t i) const noexcept {
    return ctrl_[i] != simd::kCtrlEmpty;
  }

  [[nodiscard]] std::size_t next(std::size_t i) const noexcept { return (i + 1) & mask_; }

  /// Writes a control byte, replicating into the wraparound mirror.
  void set_ctrl(std::size_t i, std::uint8_t v) noexcept {
    ctrl_[i] = v;
    const std::size_t cap = slots_.size();
    for (std::size_t p = i + cap; p < cap + kCtrlPad; p += cap) ctrl_[p] = v;
  }

  // --- probe kernels ---------------------------------------------------------
  // One probe algorithm, three bodies. All walk the same linear probe
  // sequence and stop at the first empty control byte; the group variants
  // just inspect 16/32 candidates per load. Tag (H2) collisions cost one
  // key comparison and nothing else, so every tier returns the same slot.

  /// Slot index of x, or knpos. The home slot settles most probes at load
  /// <= 3/4 (measured mean probe distance ~0.1), so it is checked directly
  /// before any group machinery spins up - vector setup per lookup costs
  /// more than it saves on a probe chain of length zero. Misses dispatch on
  /// the active tier; group probes need the group to fit the table
  /// (capacity >= width), which only excludes toy tables below the
  /// constructor floor of real sketches. Every path starts probing at the
  /// home slot, so the shortcut cannot change the answer.
  [[nodiscard]] std::size_t find_index(std::uint64_t token, const Key& x) const noexcept {
    const std::size_t home = token & mask_;
    const std::uint8_t c = ctrl_[home];
    if (c == h2(token) && slots_[home].key == x) return home;
    if (c == simd::kCtrlEmpty) return knpos;
#if MEMENTO_SIMD_X86
    const simd::tier t = simd::active();
    if (t >= simd::tier::avx2 && slots_.size() >= 32) return find_avx2(token, x);
    if (t >= simd::tier::sse2 && slots_.size() >= 16) return find_sse2(token, x);
#endif
    return find_scalar(token, x);
  }

  /// First empty slot in probe order from the token's home bucket. The
  /// insert position - identical across tiers by the same argument as
  /// find_index (including the home-slot shortcut).
  [[nodiscard]] std::size_t first_empty(std::uint64_t token) const noexcept {
    const std::size_t home = token & mask_;
    if (!is_used(home)) return home;
#if MEMENTO_SIMD_X86
    const simd::tier t = simd::active();
    if (t >= simd::tier::avx2 && slots_.size() >= 32) return first_empty_avx2(token);
    if (t >= simd::tier::sse2 && slots_.size() >= 16) return first_empty_sse2(token);
#endif
    std::size_t i = home;
    while (is_used(i)) i = next(i);
    return i;
  }

  /// The scalar oracle: linear probe with the control byte doing double duty
  /// as the empty test and the tag prefilter (same compare count as the SIMD
  /// path, one slot at a time).
  [[nodiscard]] std::size_t find_scalar(std::uint64_t token, const Key& x) const noexcept {
    const std::uint8_t tag = h2(token);
    for (std::size_t i = token & mask_;; i = next(i)) {
      const std::uint8_t c = ctrl_[i];
      if (c == tag && slots_[i].key == x) return i;
      if (c == simd::kCtrlEmpty) return knpos;
    }
  }

#if MEMENTO_SIMD_X86
  [[nodiscard]] std::size_t find_sse2(std::uint64_t token, const Key& x) const noexcept {
    const std::uint8_t tag = h2(token);
    std::size_t i = token & mask_;
    while (true) {
      const auto g = simd::group16::load(ctrl_.data() + i);
      std::uint32_t match = g.match(tag);
      const std::uint32_t empty = g.match_empty();
      if (empty) match &= empty - 1;  // candidates past the first empty are dead
      while (match) {
        const std::size_t idx = (i + static_cast<std::size_t>(__builtin_ctz(match))) & mask_;
        if (slots_[idx].key == x) return idx;
        match &= match - 1;
      }
      if (empty) return knpos;
      i = (i + simd::group16::width) & mask_;
    }
  }

  [[nodiscard]] std::size_t first_empty_sse2(std::uint64_t token) const noexcept {
    std::size_t i = token & mask_;
    while (true) {
      const std::uint32_t empty = simd::group16::load(ctrl_.data() + i).match_empty();
      if (empty) return (i + static_cast<std::size_t>(__builtin_ctz(empty))) & mask_;
      i = (i + simd::group16::width) & mask_;
    }
  }

  MEMENTO_TARGET_AVX2 [[nodiscard]] std::size_t find_avx2(std::uint64_t token,
                                                          const Key& x) const noexcept {
    const __m256i tagv = _mm256_set1_epi8(static_cast<char>(h2(token)));
    const __m256i emptyv = _mm256_set1_epi8(static_cast<char>(simd::kCtrlEmpty));
    std::size_t i = token & mask_;
    while (true) {
      const __m256i g =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ctrl_.data() + i));
      std::uint32_t match =
          static_cast<std::uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(g, tagv)));
      const std::uint32_t empty =
          static_cast<std::uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(g, emptyv)));
      if (empty) match &= empty - 1;
      while (match) {
        const std::size_t idx = (i + static_cast<std::size_t>(__builtin_ctz(match))) & mask_;
        if (slots_[idx].key == x) return idx;
        match &= match - 1;
      }
      if (empty) return knpos;
      i = (i + 32) & mask_;
    }
  }

  MEMENTO_TARGET_AVX2 [[nodiscard]] std::size_t first_empty_avx2(
      std::uint64_t token) const noexcept {
    const __m256i emptyv = _mm256_set1_epi8(static_cast<char>(simd::kCtrlEmpty));
    std::size_t i = token & mask_;
    while (true) {
      const __m256i g =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ctrl_.data() + i));
      const std::uint32_t empty =
          static_cast<std::uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(g, emptyv)));
      if (empty) return (i + static_cast<std::size_t>(__builtin_ctz(empty))) & mask_;
      i = (i + 32) & mask_;
    }
  }
#endif  // MEMENTO_SIMD_X86

  /// Shared backward-shift deletion tail: pos holds the doomed entry.
  template <typename MoveFn>
  void erase_slot(std::size_t pos, MoveFn&& on_move) {
    std::size_t hole = pos;
    for (std::size_t i = next(hole); is_used(i); i = next(i)) {
      // Entry at i may fill the hole iff its home bucket is not inside the
      // circular interval (hole, i] - i.e. probing for it still reaches i's
      // chain through `hole`. Distance arithmetic handles the wraparound.
      const std::size_t home = token_of(slots_[i].key) & mask_;
      if (((i - home) & mask_) >= ((i - hole) & mask_)) {
        slots_[hole].key = std::move(slots_[i].key);
        slots_[hole].value = slots_[i].value;
        set_ctrl(hole, ctrl_[i]);  // the tag travels with the key
        on_move(slots_[hole].value, hole);
        hole = i;
      }
    }
    slots_[hole] = slot{};
    set_ctrl(hole, simd::kCtrlEmpty);
    --size_;
  }

  void place(std::size_t i, std::uint64_t token, const Key& x, Value v) {
    slots_[i].key = x;
    slots_[i].value = v;
    set_ctrl(i, h2(token));
    ++size_;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
    } else if (size_ + 1 > slots_.size() - slots_.size() / 4) {
      rehash(slots_.size() * 2);
    }
  }

  void rehash(std::size_t new_capacity) {
    std::vector<slot> old = std::move(slots_);
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    slots_.assign(new_capacity, slot{});
    ctrl_.assign(new_capacity + kCtrlPad, simd::kCtrlEmpty);
    mask_ = new_capacity - 1;
    const std::size_t moved = size_;
    size_ = 0;
    for (std::size_t i = 0; i < old.size(); ++i) {
      if (old_ctrl[i] == simd::kCtrlEmpty) continue;
      const std::uint64_t token = token_of(old[i].key);
      place(first_empty(token), token, std::move(old[i].key), old[i].value);
    }
    assert(size_ == moved);
    (void)moved;
  }

  // place() overload used by rehash (moves the key).
  void place(std::size_t i, std::uint64_t token, Key&& x, Value v) {
    slots_[i].key = std::move(x);
    slots_[i].value = v;
    set_ctrl(i, h2(token));
    ++size_;
  }

  std::vector<slot> slots_;
  std::vector<std::uint8_t> ctrl_;  ///< H2 tags / empty sentinels + mirror
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace memento
