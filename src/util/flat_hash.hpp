// Flat open-addressing hash map for the packet-processing hot path.
//
// std::unordered_map costs the sketch stack one node allocation per insert
// and one deallocation per erase - and Space-Saving's eviction path (the
// common case on heavy-tailed traces, where most packets miss the counter
// set) pays both, plus pointer-chasing on every find. This map removes all
// of that: one flat power-of-two slot array, linear probing, and
// tombstone-free deletion by backward shifting (Knuth TAOCP 6.4 Algorithm R),
// so a long-running sketch never degrades from accumulated tombstones and
// never allocates after reserve().
//
// Values are small (32-bit counter indices / overflow counts across the
// stack), so slots stay 16 bytes for 64-bit keys - four per cache line - and
// a probe is a predictable forward scan. `bucket_of` finishes the hash with
// a splitmix64-style avalanche so identity std::hash (libstdc++ integers)
// still spreads over the power-of-two range.
//
// Used by space_saving::index_ and memento_sketch::overflows_, and through
// them by WCSS, H-Memento, MST and RHHH. References into the table are
// invalidated by rehash (growth only - erase never moves the table).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "util/random.hpp"
#include "util/wire.hpp"

namespace memento {

template <typename Key, typename Value = std::uint32_t, typename Hash = std::hash<Key>>
class flat_hash {
 public:
  flat_hash() = default;

  /// Pre-sizes the table for `expected` entries without exceeding the
  /// maximum load factor (3/4).
  explicit flat_hash(std::size_t expected) { reserve(expected); }

  /// Grows the table (never shrinks) so `expected` entries fit at load <= 3/4.
  void reserve(std::size_t expected) {
    std::size_t cap = kMinCapacity;
    while (cap - cap / 4 < expected) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  /// Pointer to x's value, or nullptr when absent. Stable until the next
  /// rehashing insert.
  [[nodiscard]] Value* find(const Key& x) noexcept {
    if (slots_.empty()) return nullptr;
    for (std::size_t i = bucket_of(x);; i = next(i)) {
      slot& s = slots_[i];
      if (!s.used) return nullptr;
      if (s.key == x) return &s.value;
    }
  }

  [[nodiscard]] const Value* find(const Key& x) const noexcept {
    return const_cast<flat_hash*>(this)->find(x);
  }

  [[nodiscard]] bool contains(const Key& x) const noexcept { return find(x) != nullptr; }

  /// Inserts {x, v}; x must not already be present (the sketches always
  /// find() first, so the probe is not repeated here beyond the empty scan).
  void emplace(const Key& x, Value v) {
    grow_if_needed();
    std::size_t i = bucket_of(x);
    while (slots_[i].used) {
      assert(!(slots_[i].key == x) && "flat_hash::emplace: key already present");
      i = next(i);
    }
    place(i, x, v);
  }

  /// Value of x, inserting `init` first when absent (the `++map[x]` idiom).
  /// Probes before growing, so a hit never rehashes (and never invalidates
  /// outstanding find() pointers).
  [[nodiscard]] Value& find_or_emplace(const Key& x, Value init) {
    if (slots_.empty()) rehash(kMinCapacity);
    std::size_t i = bucket_of(x);
    for (; slots_[i].used; i = next(i)) {
      if (slots_[i].key == x) return slots_[i].value;
    }
    if (size_ + 1 > slots_.size() - slots_.size() / 4) {
      rehash(slots_.size() * 2);
      i = bucket_of(x);
      while (slots_[i].used) i = next(i);
    }
    place(i, x, init);
    return slots_[i].value;
  }

  /// Removes x (returns false when absent) by backward shift: every entry in
  /// the probe chain after the hole moves up unless it already sits at or
  /// past its home bucket, so lookups never need tombstones.
  bool erase(const Key& x) {
    if (slots_.empty()) return false;
    std::size_t pos = bucket_of(x);
    while (true) {
      if (!slots_[pos].used) return false;
      if (slots_[pos].key == x) break;
      pos = next(pos);
    }
    erase_slot(pos, [](Value, std::size_t) {});
    return true;
  }

  /// erase() by slot position (as returned by emplace_prehashed), skipping
  /// the probe entirely - Space-Saving's eviction path keeps each monitored
  /// key's slot on its counter. The backward shift relocates other entries,
  /// so on_move(value, new_pos) fires for each one, letting the caller
  /// maintain those back-references.
  template <typename MoveFn>
  void erase_at(std::size_t pos, MoveFn&& on_move) {
    assert(pos < slots_.size() && slots_[pos].used);
    erase_slot(pos, std::forward<MoveFn>(on_move));
  }

  /// Drops all entries; capacity is retained (flush() happens every frame).
  void clear() noexcept {
    for (auto& s : slots_) s = slot{};
    size_ = 0;
  }

  /// Invokes fn(key, value) for every entry. Iteration order is the slot
  /// order - deterministic for a given operation history.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const slot& s : slots_) {
      if (s.used) fn(s.key, s.value);
    }
  }

  /// Hints the cache about x's home slot; pairs with update_batch's
  /// decision lookahead so the probe's first line is resident on arrival.
  void prefetch(const Key& x) const noexcept {
    if (!slots_.empty()) __builtin_prefetch(&slots_[bucket_of(x)]);
  }

  // --- prehashed hot-path entry points -------------------------------------
  // Batched callers hash a whole chunk of keys up front (a vectorizable pure
  // loop) and replay the probes later with the home bucket already in hand.
  // A bucket value stays valid only while capacity() is unchanged, so these
  // are restricted to pre-reserved tables that never grow (asserted).

  /// Home bucket of x; the table must be non-empty (reserve() first).
  [[nodiscard]] std::size_t bucket(const Key& x) const noexcept {
    assert(!slots_.empty() && "flat_hash::bucket: reserve() before prehashing");
    return bucket_of(x);
  }

  /// find(x), probing from a bucket() value computed earlier.
  [[nodiscard]] Value* find_prehashed(std::size_t bucket, const Key& x) noexcept {
    assert(!slots_.empty() && bucket == bucket_of(x));
    for (std::size_t i = bucket;; i = next(i)) {
      slot& s = slots_[i];
      if (!s.used) return nullptr;
      if (s.key == x) return &s.value;
    }
  }

  /// emplace(x, v) from a bucket() value; the table must have spare reserved
  /// capacity (growth would invalidate every outstanding bucket value).
  /// Returns the slot position x landed in (stable until a rehash or until a
  /// backward-shift erase relocates it - see erase_at's on_move).
  std::size_t emplace_prehashed(std::size_t bucket, const Key& x, Value v) {
    assert(!slots_.empty() && bucket == bucket_of(x));
    assert(size_ + 1 <= slots_.size() - slots_.size() / 4 &&
           "flat_hash::emplace_prehashed: table would need to grow");
    std::size_t i = bucket;
    while (slots_[i].used) {
      assert(!(slots_[i].key == x) && "flat_hash::emplace_prehashed: key already present");
      i = next(i);
    }
    place(i, x, v);
    return i;
  }

  /// Prefetches a home slot by bucket() value.
  void prefetch_bucket(std::size_t bucket) const noexcept {
    __builtin_prefetch(&slots_[bucket]);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Slot-array size (a power of two; 0 before the first insert/reserve).
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  // --- snapshot support ------------------------------------------------------
  // The table is serialized by EXACT slot layout, not as a key/value bag:
  // slot positions feed back into behavior (Space-Saving keeps islot
  // back-references; for_each order is slot order, and through it candidate
  // iteration order), so a restored table must probe, iterate and relocate
  // exactly like the original - the bit-identical-continuation guarantee of
  // the snapshot layer rests on it.

  /// Invokes fn(slot_pos, key, value) for every entry in slot order. Used by
  /// restore-side cross-checks (e.g. Space-Saving's islot validation).
  template <typename Fn>
  void for_each_slot(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].used) fn(i, slots_[i].key, slots_[i].value);
    }
  }

  /// Serializes capacity + the used slots (ascending position).
  void save(wire::writer& w) const {
    w.varint(slots_.size());
    w.varint(size_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].used) continue;
      w.varint(i);
      wire::codec<Key>::put(w, slots_[i].key);
      w.varint(static_cast<std::uint64_t>(slots_[i].value));
    }
  }

  /// Rebuilds the exact layout from save() output. Returns false - leaving
  /// the table empty - on ANY structural violation: capacity not a power of
  /// two (or absurd), overload, positions out of range or non-ascending, or
  /// an entry that a probe from its home bucket would not reach (which
  /// would make it silently unfindable). Malformed bytes can never produce
  /// a table that crashes later.
  [[nodiscard]] bool restore(wire::reader& r) {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
    std::uint64_t cap = 0, count = 0;
    if (!r.varint(cap) || !r.varint(count)) return false;
    if (cap == 0) return count == 0;
    if (cap < kMinCapacity || cap > kMaxRestoreCapacity || (cap & (cap - 1)) != 0) return false;
    if (count > cap - cap / 4) return false;
    // An honest save of `count` entries occupies at least 10 bytes each
    // (pos + 8-byte key + value); reject lying counts before allocating.
    if (count * 10 > r.remaining()) return false;
    slots_.assign(static_cast<std::size_t>(cap), slot{});
    mask_ = static_cast<std::size_t>(cap) - 1;
    std::uint64_t prev_pos = 0;
    for (std::uint64_t n = 0; n < count; ++n) {
      std::uint64_t pos = 0, value = 0;
      Key key{};
      if (!r.varint(pos) || !wire::codec<Key>::get(r, key) || !r.varint(value)) return false;
      if (pos >= cap || (n > 0 && pos <= prev_pos)) return false;
      if (value > std::numeric_limits<Value>::max()) return false;
      prev_pos = pos;
      place(static_cast<std::size_t>(pos), key, static_cast<Value>(value));
    }
    // Probe-reachability: every entry must be findable by walking from its
    // home bucket through used slots. Rejecting here keeps find()'s "empty
    // slot terminates the probe" invariant true for restored tables.
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].used) continue;
      std::size_t walk = bucket_of(slots_[i].key);
      std::size_t steps = 0;
      while (walk != i) {
        if (!slots_[walk].used || ++steps > size_) {
          clear();
          return false;
        }
        walk = next(walk);
      }
    }
    return true;
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;
  /// Restore-side allocation guard: real sketch tables run thousands of
  /// slots, so anything near this in a snapshot is garbage, not data. The
  /// cap also bounds the transient allocation a malicious tiny payload can
  /// trigger before rejection (~50 MB of slots at 2^21).
  static constexpr std::size_t kMaxRestoreCapacity = std::size_t{1} << 21;

  struct slot {
    Key key{};
    Value value{};
    bool used = false;
  };

  /// mix64 finalizer on top of Hash: full-avalanche high and low bits, so
  /// masking to a power of two is safe even for identity hashes.
  [[nodiscard]] std::size_t bucket_of(const Key& x) const noexcept {
    return static_cast<std::size_t>(mix64(static_cast<std::uint64_t>(Hash{}(x)))) & mask_;
  }

  [[nodiscard]] std::size_t next(std::size_t i) const noexcept { return (i + 1) & mask_; }

  /// Shared backward-shift deletion tail: pos holds the doomed entry.
  template <typename MoveFn>
  void erase_slot(std::size_t pos, MoveFn&& on_move) {
    std::size_t hole = pos;
    for (std::size_t i = next(hole); slots_[i].used; i = next(i)) {
      // Entry at i may fill the hole iff its home bucket is not inside the
      // circular interval (hole, i] - i.e. probing for it still reaches i's
      // chain through `hole`. Distance arithmetic handles the wraparound.
      const std::size_t home = bucket_of(slots_[i].key);
      if (((i - home) & mask_) >= ((i - hole) & mask_)) {
        slots_[hole].key = std::move(slots_[i].key);
        slots_[hole].value = slots_[i].value;
        on_move(slots_[hole].value, hole);
        hole = i;
      }
    }
    slots_[hole] = slot{};
    --size_;
  }

  void place(std::size_t i, const Key& x, Value v) {
    slots_[i].key = x;
    slots_[i].value = v;
    slots_[i].used = true;
    ++size_;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(kMinCapacity);
    } else if (size_ + 1 > slots_.size() - slots_.size() / 4) {
      rehash(slots_.size() * 2);
    }
  }

  void rehash(std::size_t new_capacity) {
    std::vector<slot> old = std::move(slots_);
    slots_.assign(new_capacity, slot{});
    mask_ = new_capacity - 1;
    for (slot& s : old) {
      if (!s.used) continue;
      std::size_t i = bucket_of(s.key);
      while (slots_[i].used) i = next(i);
      slots_[i].key = std::move(s.key);
      slots_[i].value = s.value;
      slots_[i].used = true;
    }
  }

  std::vector<slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace memento
