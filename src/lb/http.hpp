// Minimal HTTP request model for the load-balancer tier.
//
// The paper's testbed drives HAProxy with stateful HTTP GET/POST requests
// from many source IPs (Section 6.3, "Traffic generation"). The measurement
// algorithms only ever see the source (and destination) address, so the
// request model keeps just enough structure for the load balancer to be a
// believable substrate: a packet identity, a method, and a path hash for
// backend affinity experiments.
#pragma once

#include <cstdint>

#include "trace/packet.hpp"

namespace memento::lb {

enum class http_method : std::uint8_t { get, post };

struct http_request {
  packet pkt{};                          ///< (client addr, virtual-ip) pair
  http_method method = http_method::get;
  std::uint32_t path_hash = 0;           ///< stable hash of the request path

  [[nodiscard]] std::uint32_t client() const noexcept { return pkt.src; }
};

/// Builds a request from a trace packet (GET, path derived from dst).
[[nodiscard]] inline http_request request_from_packet(const packet& p) noexcept {
  return {p, http_method::get, p.dst * 0x9e3779b9u};
}

}  // namespace memento::lb
