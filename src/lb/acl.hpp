// Access-control list with subnet-granularity actions.
//
// Reproduces the capability the paper added to HAProxy 1.8.1: "we leveraged
// and extended HAProxy's Access Control List (ACL) capabilities ... to
// perform mitigation (i.e., Deny or Tarpit) when an attacker is identified"
// - at the granularity of entire subnets rather than individual flows.
//
// Rules are keyed by the 5 byte-granularity generalizations of the client
// address, so a lookup is at most 5 hash probes (O(1)); the most specific
// matching rule wins, mirroring ACL precedence.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "hierarchy/prefix1d.hpp"

namespace memento::lb {

enum class acl_action : std::uint8_t {
  allow,   ///< default: forward to a backend
  deny,    ///< drop immediately (HAProxy "deny")
  tarpit,  ///< hold then reject, punishing the client (HAProxy "tarpit")
};

class acl {
 public:
  /// Installs (or overwrites) a rule for a subnet. `depth` follows the 1D
  /// hierarchy convention: 0 = /32 single host ... 4 = /0 catch-all.
  void set_rule(std::uint32_t addr, std::size_t depth, acl_action action) {
    rules_[prefix1d::make_key(addr, depth)] = action;
  }

  /// Installs a rule from an already-encoded prefix key.
  void set_rule(std::uint64_t prefix_key, acl_action action) {
    rules_[prefix_key] = action;
  }

  void clear_rule(std::uint32_t addr, std::size_t depth) {
    rules_.erase(prefix1d::make_key(addr, depth));
  }

  void clear() { rules_.clear(); }

  /// The action for a client address: most specific matching rule, or allow.
  [[nodiscard]] acl_action lookup(std::uint32_t client) const {
    for (std::size_t depth = 0; depth < prefix1d::kNumLevels; ++depth) {
      const auto it = rules_.find(prefix1d::make_key(client, depth));
      if (it != rules_.end()) return it->second;
    }
    return acl_action::allow;
  }

  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }

 private:
  std::unordered_map<std::uint64_t, acl_action> rules_;
};

}  // namespace memento::lb
