// Mitigation policy: the controller-side decision logic between detection
// and enforcement (Fig. 3: "it can mitigate the attack by instructing the
// clients which subnets to rate-limit or block").
//
// The cluster's raw loop blocks forever once a subnet crosses theta; this
// policy adds the production concerns around it:
//
//   * graduated response - subnets first get RATE-LIMITED at `limit_theta`,
//     and only DENIED outright at the higher `block_theta`;
//   * automatic recovery - a blocked/limited subnet whose estimated window
//     share falls below `release_theta` (hysteresis below limit_theta) is
//     released, so a flash crowd does not stay blackholed after it ends;
//   * bounded rule tables - at most `max_rules` subnets are acted on, most
//     aggressive shares first, since real load balancers cap ACL sizes.
//
// The policy is pure decision logic over (prefix -> estimated share)
// snapshots, so it is unit-testable without any network machinery and can
// drive either the acl/rate_limiter pair or an external enforcement plane.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "hierarchy/prefix1d.hpp"

namespace memento::lb {

enum class mitigation_level : std::uint8_t { none, rate_limited, blocked };

struct mitigation_decision {
  std::uint64_t prefix_key = 0;
  mitigation_level from = mitigation_level::none;
  mitigation_level to = mitigation_level::none;
};

struct mitigation_config {
  double block_theta = 0.05;    ///< window share that triggers a full block
  double limit_theta = 0.02;    ///< share that triggers rate limiting
  double release_theta = 0.01;  ///< share below which actions are lifted
  std::size_t max_rules = 256;  ///< enforcement table capacity
};

class mitigation_policy {
 public:
  explicit mitigation_policy(const mitigation_config& config) : config_(config) {
    if (!(config.release_theta < config.limit_theta &&
          config.limit_theta < config.block_theta)) {
      throw std::invalid_argument(
          "mitigation: need release_theta < limit_theta < block_theta");
    }
    if (config.max_rules == 0) throw std::invalid_argument("mitigation: max_rules >= 1");
  }

  /// Evaluates a detection snapshot: (subnet prefix key -> estimated window
  /// share). Returns the level transitions to enforce, aggressive shares
  /// first. Subnets absent from the snapshot are treated as share 0 (their
  /// traffic vanished), so recovery needs no special casing.
  [[nodiscard]] std::vector<mitigation_decision> evaluate(
      const std::unordered_map<std::uint64_t, double>& shares) {
    std::vector<mitigation_decision> decisions;

    // Release or downgrade existing rules first - this frees capacity.
    for (auto it = active_.begin(); it != active_.end();) {
      const auto found = shares.find(it->first);
      const double share = found == shares.end() ? 0.0 : found->second;
      const mitigation_level current = it->second;
      mitigation_level next = current;
      if (share < config_.release_theta) {
        next = mitigation_level::none;
      } else if (current == mitigation_level::blocked && share < config_.limit_theta) {
        next = mitigation_level::rate_limited;
      }
      if (next != current) {
        decisions.push_back({it->first, current, next});
        if (next == mitigation_level::none) {
          it = active_.erase(it);
          continue;
        }
        it->second = next;
      }
      ++it;
    }

    // Escalations and new rules, heaviest subnets first.
    std::vector<std::pair<std::uint64_t, double>> ordered(shares.begin(), shares.end());
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [key, share] : ordered) {
      const mitigation_level target = share >= config_.block_theta
                                          ? mitigation_level::blocked
                                      : share >= config_.limit_theta
                                          ? mitigation_level::rate_limited
                                          : mitigation_level::none;
      if (target == mitigation_level::none) continue;
      const auto it = active_.find(key);
      const mitigation_level current =
          it == active_.end() ? mitigation_level::none : it->second;
      if (current == target) continue;
      // Never *downgrade* here (handled above); only escalate or add.
      if (current == mitigation_level::blocked) continue;
      if (current == mitigation_level::none && active_.size() >= config_.max_rules) {
        continue;  // table full: lighter subnets wait for capacity
      }
      active_[key] = target;
      decisions.push_back({key, current, target});
    }
    return decisions;
  }

  [[nodiscard]] mitigation_level level_of(std::uint64_t prefix_key) const {
    const auto it = active_.find(prefix_key);
    return it == active_.end() ? mitigation_level::none : it->second;
  }

  [[nodiscard]] std::size_t active_rules() const noexcept { return active_.size(); }
  [[nodiscard]] const mitigation_config& config() const noexcept { return config_; }

 private:
  mitigation_config config_;
  std::unordered_map<std::uint64_t, mitigation_level> active_;
};

}  // namespace memento::lb
