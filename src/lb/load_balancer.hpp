// A single load-balancer instance: ACL enforcement, backend selection, and a
// measurement hook - the HAProxy-process substitute of the Section 6.3
// testbed ("ten autonomous instances of HAProxy load-balancers").
//
// Processing order mirrors HAProxy's request path: the measurement hook sees
// every INGRESS request (mitigation does not blind the measurement - blocked
// attack traffic must keep contributing to the HHH view or the window would
// "forget" an ongoing attack), then the ACL verdict is enforced, then an
// allowed request is round-robined to a backend.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "lb/acl.hpp"
#include "lb/http.hpp"

namespace memento::lb {

enum class verdict : std::uint8_t { forwarded, denied, tarpitted };

struct lb_stats {
  std::uint64_t received = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t denied = 0;
  std::uint64_t tarpitted = 0;
};

class load_balancer {
 public:
  /// Hook invoked on every ingress request (feeds a measurement point).
  using measurement_hook = std::function<void(const http_request&)>;

  /// @param id       instance id (stable across the cluster).
  /// @param backends number of Apache-substitute backends (>= 1).
  load_balancer(std::uint32_t id, std::size_t backends)
      : backend_served_(backends, 0), id_(id) {
    if (backends == 0) throw std::invalid_argument("load_balancer: need >= 1 backend");
  }

  void set_measurement_hook(measurement_hook hook) { hook_ = std::move(hook); }

  /// ACL table, exposed for the controller's mitigation push-downs.
  [[nodiscard]] acl& access_list() noexcept { return acl_; }
  [[nodiscard]] const acl& access_list() const noexcept { return acl_; }

  /// Processes one request: measure, enforce, forward.
  verdict process(const http_request& request) {
    ++stats_.received;
    if (hook_) hook_(request);

    switch (acl_.lookup(request.client())) {
      case acl_action::deny:
        ++stats_.denied;
        return verdict::denied;
      case acl_action::tarpit:
        ++stats_.tarpitted;
        return verdict::tarpitted;
      case acl_action::allow:
        break;
    }
    ++backend_served_[next_backend_];
    next_backend_ = next_backend_ + 1 == backend_served_.size() ? 0 : next_backend_ + 1;
    ++stats_.forwarded;
    return verdict::forwarded;
  }

  [[nodiscard]] const lb_stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] std::size_t backends() const noexcept { return backend_served_.size(); }
  [[nodiscard]] std::uint64_t backend_load(std::size_t i) const { return backend_served_.at(i); }

 private:
  acl acl_;
  measurement_hook hook_;
  std::vector<std::uint64_t> backend_served_;
  std::size_t next_backend_ = 0;
  lb_stats stats_{};
  std::uint32_t id_;
};

}  // namespace memento::lb
