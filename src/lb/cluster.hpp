// The full mitigation deployment of Fig. 3: a cluster of load balancers, a
// network-wide measurement plane, and a centralized controller that pushes
// subnet rate-limits (ACL deny rules) back to every instance.
//
// This composes the whole repository: traffic -> load_balancer (per-client
// hashing) -> measurement hook -> netwide harness (Sample / Batch /
// Aggregation under a byte budget) -> D-H-Memento controller -> HHH check ->
// ACL push-down. It is the engine of the Fig. 10 HTTP-flood experiment and
// the ddos_mitigation example.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "hierarchy/prefix1d.hpp"
#include "lb/load_balancer.hpp"
#include "netwide/simulation.hpp"

namespace memento::lb {

struct cluster_config {
  std::size_t num_balancers = 10;      ///< the paper's ten HAProxy instances
  std::size_t backends_per_lb = 4;     ///< Apache-substitute pool per LB
  netwide::comm_method method = netwide::comm_method::batch;
  std::size_t batch_size = 0;          ///< 0 = Theorem 5.5 optimum
  std::uint64_t window = 1'000'000;    ///< W: global request window
  netwide::budget_model budget{};      ///< B = 1 byte/packet by default
  std::size_t counters = 4096;         ///< controller algorithm size
  double theta = 0.01;                 ///< HHH / rate-limit threshold
  std::size_t detect_stride = 1'000;   ///< requests between controller checks
  std::size_t monitored_depth = 3;     ///< subnet granularity to block (3 = /8)
  double delta = 1e-3;
  std::uint64_t seed = 1;
};

class cluster {
 public:
  explicit cluster(const cluster_config& config)
      : harness_(make_harness_config(config)), config_(config) {
    balancers_.reserve(config.num_balancers);
    for (std::size_t i = 0; i < config.num_balancers; ++i) {
      auto& balancer =
          balancers_.emplace_back(static_cast<std::uint32_t>(i), config.backends_per_lb);
      balancer.set_measurement_hook(
          [this](const http_request& request) { harness_.ingest(request.pkt); });
    }
  }

  /// Routes one request to its load balancer (stable per-client hashing, as
  /// a cloud front-end would), runs detection periodically, and returns the
  /// verdict. Detection happens on the controller's *stale* network-wide
  /// view - exactly the delay the Fig. 10 experiment quantifies.
  verdict handle(const http_request& request) {
    ++requests_;
    const verdict v = balancers_[route(request)].process(request);
    if (requests_ % config_.detect_stride == 0) run_detection();
    return v;
  }

  /// Controller pass: find subnets over threshold, push deny rules to every
  /// load balancer (the paper's rate-limit/block push-down).
  void run_detection() {
    for (const auto& entry : harness_.output(config_.theta)) {
      const auto key = entry.key;
      if (source_hierarchy::depth(key) != config_.monitored_depth) continue;
      if (blocked_.insert(key).second) {
        for (auto& balancer : balancers_) {
          balancer.access_list().set_rule(key, acl_action::deny);
        }
      }
    }
  }

  /// True when a subnet prefix key is currently blocked cluster-wide.
  [[nodiscard]] bool is_blocked(std::uint64_t prefix_key) const {
    return blocked_.count(prefix_key) > 0;
  }

  [[nodiscard]] const std::unordered_set<std::uint64_t>& blocked() const noexcept {
    return blocked_;
  }

  [[nodiscard]] lb_stats total_stats() const {
    lb_stats total;
    for (const auto& balancer : balancers_) {
      total.received += balancer.stats().received;
      total.forwarded += balancer.stats().forwarded;
      total.denied += balancer.stats().denied;
      total.tarpitted += balancer.stats().tarpitted;
    }
    return total;
  }

  [[nodiscard]] const netwide::netwide_harness<source_hierarchy>& harness() const noexcept {
    return harness_;
  }
  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::size_t size() const noexcept { return balancers_.size(); }
  [[nodiscard]] const load_balancer& balancer(std::size_t i) const { return balancers_.at(i); }

 private:
  [[nodiscard]] static netwide::harness_config make_harness_config(const cluster_config& c) {
    netwide::harness_config h;
    h.method = c.method;
    h.num_points = c.num_balancers;
    h.window = c.window;
    h.budget = c.budget;
    h.batch_size = c.batch_size;
    h.counters = c.counters;
    h.delta = c.delta;
    h.seed = c.seed;
    return h;
  }

  [[nodiscard]] std::size_t route(const http_request& request) const noexcept {
    std::uint64_t z = request.client() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>((z ^ (z >> 31)) % balancers_.size());
  }

  netwide::netwide_harness<source_hierarchy> harness_;
  std::vector<load_balancer> balancers_;
  std::unordered_set<std::uint64_t> blocked_;
  cluster_config config_;
  std::uint64_t requests_ = 0;
};

}  // namespace memento::lb
