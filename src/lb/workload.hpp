// Stateful HTTP workload generation - the simulated counterpart of the
// paper's traffic tool (Section 6.3, "Traffic generation"): "a tool that
// enables a single commodity desktop to maintain and initiate stateful HTTP
// GET and POST requests sourcing from multiple IP addresses", built on
// NFQUEUE in the paper's testbed and reproduced here as a deterministic
// discrete-event generator.
//
// Model: a pool of client sessions. Each session owns a source address,
// issues a geometric number of requests (a mix of GETs and POSTs over a few
// paths), waits a think-time between requests, then closes and is replaced
// by a fresh client - so at any instant the generator maintains
// `concurrent_sessions` live "connections", mirroring the testbed's
// keep-alive-free operation where the kernel's socket churn bounded request
// rates. Request interleaving across sessions follows each session's
// next-action time, giving the load balancers realistically mixed traffic
// rather than per-client bursts.
#pragma once

#include <cmath>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <vector>

#include "lb/http.hpp"
#include "trace/packet.hpp"
#include "util/random.hpp"

namespace memento::lb {

struct workload_config {
  std::size_t concurrent_sessions = 1000;  ///< live client connections
  double requests_per_session = 8.0;       ///< geometric mean per connection
  double post_fraction = 0.2;              ///< POST share (rest are GETs)
  std::uint32_t virtual_ip = 0x0A00000Au;  ///< the service address clients hit
  std::size_t num_paths = 64;              ///< distinct request paths
  double mean_think_time = 50.0;           ///< inter-request gap, in ticks
  std::uint64_t seed = 1;
};

class workload_generator {
 public:
  explicit workload_generator(const workload_config& config)
      : config_(config), rng_(config.seed) {
    if (config.concurrent_sessions == 0) {
      throw std::invalid_argument("workload: need >= 1 session");
    }
    if (config.requests_per_session < 1.0) {
      throw std::invalid_argument("workload: need >= 1 request per session");
    }
    for (std::size_t i = 0; i < config_.concurrent_sessions; ++i) {
      spawn_session();
    }
  }

  /// The next request across all live sessions (by next-action time).
  [[nodiscard]] http_request next() {
    session s = queue_.top();
    queue_.pop();
    clock_ = s.next_action;

    http_request request;
    request.pkt = {s.client, config_.virtual_ip};
    request.method = rng_.uniform01() < config_.post_fraction ? http_method::post
                                                              : http_method::get;
    request.path_hash =
        static_cast<std::uint32_t>(rng_.bounded(config_.num_paths)) * 0x9e3779b9u;
    ++requests_issued_;

    if (s.remaining_requests > 1) {
      --s.remaining_requests;
      s.next_action = clock_ + think_time();
      queue_.push(s);
    } else {
      ++sessions_completed_;
      spawn_session();  // a fresh client replaces the closed connection
    }
    return request;
  }

  /// Convenience: materialize `count` interleaved requests.
  [[nodiscard]] std::vector<http_request> generate(std::size_t count) {
    std::vector<http_request> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(next());
    return out;
  }

  [[nodiscard]] std::uint64_t requests_issued() const noexcept { return requests_issued_; }
  [[nodiscard]] std::uint64_t sessions_completed() const noexcept {
    return sessions_completed_;
  }
  [[nodiscard]] std::size_t live_sessions() const noexcept { return queue_.size(); }
  [[nodiscard]] double clock() const noexcept { return clock_; }

 private:
  struct session {
    std::uint32_t client = 0;
    std::uint32_t remaining_requests = 0;
    double next_action = 0.0;

    bool operator>(const session& other) const noexcept {
      return next_action > other.next_action;
    }
  };

  void spawn_session() {
    session s;
    s.client = static_cast<std::uint32_t>(rng_());
    s.remaining_requests = geometric_requests();
    s.next_action = clock_ + think_time();
    queue_.push(s);
  }

  /// Geometric(1/mean) request count, min 1.
  [[nodiscard]] std::uint32_t geometric_requests() {
    const double p = 1.0 / config_.requests_per_session;
    double u = rng_.uniform01();
    if (u <= 0.0) u = 0x1.0p-53;
    const double draws = std::log(u) / std::log1p(-p);
    return 1 + static_cast<std::uint32_t>(draws);
  }

  /// Exponential think time with the configured mean.
  [[nodiscard]] double think_time() {
    double u = rng_.uniform01();
    if (u <= 0.0) u = 0x1.0p-53;
    return -config_.mean_think_time * std::log(u);
  }

  workload_config config_;
  xoshiro256 rng_;
  std::priority_queue<session, std::vector<session>, std::greater<>> queue_;
  double clock_ = 0.0;
  std::uint64_t requests_issued_ = 0;
  std::uint64_t sessions_completed_ = 0;
};

}  // namespace memento::lb
