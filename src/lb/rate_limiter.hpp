// Token-bucket rate limiting at subnet granularity.
//
// The paper's HAProxy extension provides "capabilities to block and
// RATE-LIMIT traffic from entire sub-networks (rather than from individual
// flows)". The ACL's deny/tarpit actions cover blocking; this module adds
// the graduated response: each limited prefix owns a token bucket, and
// requests from the subnet are admitted while tokens last.
//
// Time is logical (request count), matching the rest of the repository: a
// bucket refills `rate` tokens per 1000 requests observed cluster-wide,
// which decouples the limiter from wall-clock mocking in tests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "hierarchy/prefix1d.hpp"

namespace memento::lb {

class rate_limiter {
 public:
  /// Limits a subnet to `tokens_per_kilorequest` admitted requests per 1000
  /// observed requests, with at most `burst` accumulated credit.
  void set_limit(std::uint32_t addr, std::size_t depth, double tokens_per_kilorequest,
                 double burst) {
    buckets_[prefix1d::make_key(addr, depth)] =
        bucket{burst, burst, tokens_per_kilorequest / 1000.0, clock_};
  }

  void clear_limit(std::uint32_t addr, std::size_t depth) {
    buckets_.erase(prefix1d::make_key(addr, depth));
  }

  void clear() { buckets_.clear(); }

  /// Advances logical time by one observed request. Call once per ingress
  /// request, whether or not any limited subnet is involved.
  void tick() noexcept { ++clock_; }

  /// True when a request from `client` may pass. Checks the most specific
  /// limited prefix; unlimited clients always pass. Consumes one token on
  /// admission.
  [[nodiscard]] bool admit(std::uint32_t client) {
    for (std::size_t depth = 0; depth < prefix1d::kNumLevels; ++depth) {
      const auto it = buckets_.find(prefix1d::make_key(client, depth));
      if (it == buckets_.end()) continue;
      bucket& b = it->second;
      refill(b);
      if (b.tokens >= 1.0) {
        b.tokens -= 1.0;
        return true;
      }
      return false;
    }
    return true;
  }

  /// Current token balance of a limited prefix (diagnostics; -1 if absent).
  [[nodiscard]] double tokens(std::uint32_t addr, std::size_t depth) {
    const auto it = buckets_.find(prefix1d::make_key(addr, depth));
    if (it == buckets_.end()) return -1.0;
    refill(it->second);
    return it->second.tokens;
  }

  [[nodiscard]] std::size_t size() const noexcept { return buckets_.size(); }

 private:
  struct bucket {
    double tokens = 0.0;
    double burst = 0.0;
    double rate_per_request = 0.0;   ///< tokens gained per observed request
    std::uint64_t last_refill = 0;   ///< logical clock of the last refill
  };

  void refill(bucket& b) noexcept {
    const std::uint64_t elapsed = clock_ - b.last_refill;
    if (elapsed == 0) return;
    b.tokens = std::min(b.burst,
                        b.tokens + b.rate_per_request * static_cast<double>(elapsed));
    b.last_refill = clock_;
  }

  std::unordered_map<std::uint64_t, bucket> buckets_;
  std::uint64_t clock_ = 0;
};

}  // namespace memento::lb
